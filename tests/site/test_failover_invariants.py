"""Failover invariants: no phantom reports during outages, bounded staleness.

These two checks close the failover loop: the first proves a dead
reader contributed nothing while dead (anything else means fused state
was fabricated or mis-timed), the second proves every tag that fused at
all kept being sighted often enough — i.e. the re-plan actually covered
the lost zone instead of quietly dropping it.
"""

from repro.faults.site import ReaderOutage, SiteFaultPlan
from repro.runtime.invariants import SiteInvariantSuite
from repro.site.fusion import FusionLayer, TagReport


def report(epc=1, reader=0, t=0.0):
    return TagReport(
        epc_value=epc, reader_id=reader, time_s=t,
        antenna_index=0, channel_index=0, phase_rad=0.0, rss_dbm=-60.0,
    )


def fused(*reports):
    layer = FusionLayer()
    layer.ingest_many(reports)
    return layer


PLAN = SiteFaultPlan(outages=(
    ReaderOutage(reader_id=1, at_s=1.0, downtime_s=0.5),
))


class TestNoPhantomDuringFailover:
    def test_report_inside_the_outage_is_a_phantom(self):
        suite = SiteInvariantSuite([1])
        suite.check_failover(fused(report(reader=1, t=1.2)), PLAN)
        assert len(suite.violations) == 1
        assert suite.violations[0].name == "phantom-report-during-outage"

    def test_reports_outside_the_window_are_fine(self):
        suite = SiteInvariantSuite([1])
        suite.check_failover(
            fused(
                report(reader=1, t=0.9),   # before the death
                report(reader=1, t=1.5),   # exactly at rejoin (half-open)
                report(reader=0, t=1.2),   # other reader, mid-window
            ),
            PLAN,
        )
        assert suite.violations == []

    def test_empty_plan_never_flags(self):
        suite = SiteInvariantSuite([1])
        suite.check_failover(
            fused(report(reader=1, t=1.2)), SiteFaultPlan.none()
        )
        assert suite.violations == []


class TestBoundedStaleness:
    def test_gap_beyond_bound_is_stale(self):
        suite = SiteInvariantSuite([1])
        layer = fused(report(t=0.0), report(t=5.0))
        suite.check_lost_zone_staleness(layer, horizon_s=5.0, bound_s=2.0)
        assert len(suite.violations) == 1
        assert suite.violations[0].name == "stale-lost-zone"

    def test_trailing_silence_counts_against_the_bound(self):
        suite = SiteInvariantSuite([1])
        layer = fused(report(t=0.5))  # last sighting, then 4.5 s of nothing
        suite.check_lost_zone_staleness(layer, horizon_s=5.0, bound_s=2.0)
        assert len(suite.violations) == 1

    def test_regular_sightings_pass(self):
        suite = SiteInvariantSuite([1])
        layer = fused(*(report(t=0.5 * i) for i in range(11)))
        suite.check_lost_zone_staleness(layer, horizon_s=5.0, bound_s=2.0)
        assert suite.violations == []

    def test_never_fused_tags_are_the_coverage_slos_problem(self):
        suite = SiteInvariantSuite([1, 2])  # tag 2 never fused at all
        layer = fused(*(report(epc=1, t=0.5 * i) for i in range(11)))
        suite.check_lost_zone_staleness(layer, horizon_s=5.0, bound_s=2.0)
        assert suite.violations == []

    def test_excused_epcs_are_skipped(self):
        suite = SiteInvariantSuite([1])
        layer = fused(report(t=0.0), report(t=5.0))
        suite.check_lost_zone_staleness(
            layer, horizon_s=5.0, bound_s=2.0, excused_epc_values={1}
        )
        assert suite.violations == []
