"""SiteSupervisor: watchdog, re-planning, warm rejoin, determinism.

One small line site with one injected outage exercises the whole
failover arc — silence detection at an epoch barrier, channel re-plan
over survivors, coverage rebalancing, warm rejoin replay — and the
report must be byte-identical across worker counts.
"""

import pytest

from repro.faults.site import ReaderOutage, SiteFaultPlan
from repro.obs.health.monitor import HealthPolicy, SiteHealthMonitor
from repro.obs.health.recorder import FlightRecorder
from repro.runtime.checkpoint import CheckpointStore
from repro.site.channels import ChannelCoordinator
from repro.site.site import SiteConfig
from repro.site.supervisor import (
    SitePolicy,
    SiteSupervisor,
    site_config_hash,
)
from repro.site.topology import line_site


def make_config(faults=None, n_readers=3, n_tags=24, seed=11):
    return SiteConfig(
        topology=line_site(n_readers, n_tags, pitch_m=3.0, range_m=6.0),
        seed=seed,
        duration_s=3.0,
        base_read_loss=0.15,
        coordinator=ChannelCoordinator(n_channels=4),
        faults=faults or SiteFaultPlan.none(),
    )


ONE_OUTAGE = SiteFaultPlan(outages=(
    # Dies at 1.0 s, back at 1.75 s: with 0.25 s epochs the watchdog sees
    # silence at the t=1.25 barrier and the rejoin at t=2.0.
    ReaderOutage(reader_id=1, at_s=1.0, downtime_s=0.75),
))


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SitePolicy(epoch_s=0.0)
        with pytest.raises(ValueError):
            SitePolicy(dead_after_silent_epochs=0)
        with pytest.raises(ValueError):
            SitePolicy(range_boost=0.5)

    def test_config_hash_is_stable_and_config_sensitive(self):
        config = make_config()
        assert site_config_hash(config) == site_config_hash(config)
        other = make_config(seed=12)
        assert site_config_hash(config) != site_config_hash(other)


class TestFailoverArc:
    def run_supervised(self, tmp_path, workers=None):
        store = CheckpointStore(tmp_path / "site.ckpt")
        supervisor = SiteSupervisor(
            make_config(ONE_OUTAGE),
            policy=SitePolicy(epoch_s=0.25),
            store=store,
        )
        report = supervisor.run(12, workers=workers, staleness_bound_s=3.0)
        return supervisor, report

    def test_death_rejoin_and_replans(self, tmp_path):
        supervisor, report = self.run_supervised(tmp_path)
        assert report.n_deaths == 1
        assert report.n_rejoins == 1
        # One re-plan on death, one on rejoin.
        assert report.n_replans == 2
        assert supervisor.believed_dead == set()
        episode = report.episodes[0]
        assert episode.reader_id == 1
        assert episode.failover_s <= 2 * 0.25
        # Warm rejoin replays the checkpoint into an idempotent fold:
        # nothing is newly absorbed, or supervisor state diverged.
        assert episode.replayed_new == 0
        assert report.violations == []
        assert report.ok

    def test_workers_do_not_change_the_bytes(self, tmp_path):
        _, sequential = self.run_supervised(tmp_path / "a", workers=1)
        _, sharded = self.run_supervised(tmp_path / "b", workers=4)
        assert sequential.canonical_bytes() == sharded.canonical_bytes()

    def test_dead_reader_degrades_coverage_bookkeeping(self, tmp_path):
        supervisor, report = self.run_supervised(tmp_path)
        detected = next(
            r["epoch"] for r in report.epoch_records if r["newly_dead"] == [1]
        )
        # The detection epoch itself ran with the old scales; the boost
        # shows up in the next epoch's simulation.
        boosted = report.epoch_records[detected + 1]["readers"]
        scales = {r["reader_id"]: r["range_scale"] for r in boosted}
        assert scales[0] > 1.0 and scales[2] > 1.0

    def test_outage_cuts_exactly_one_incident_bundle(self, tmp_path):
        recorder = FlightRecorder()
        supervisor = SiteSupervisor(
            make_config(ONE_OUTAGE),
            policy=SitePolicy(epoch_s=0.25),
            recorder=recorder,
            bundle_dir=str(tmp_path),
        )
        report = supervisor.run(12)
        assert len(report.incidents) == 1
        assert report.episodes[0].bundle is not None
        assert (tmp_path / report.episodes[0].bundle).is_dir()


class TestRestore:
    def test_restore_resumes_from_the_checkpoint(self, tmp_path):
        config = make_config(ONE_OUTAGE)
        store = CheckpointStore(tmp_path / "site.ckpt")
        policy = SitePolicy(epoch_s=0.25, checkpoint_every_epochs=4)
        first = SiteSupervisor(config, policy=policy, store=store)
        for _ in range(8):
            first.run_epoch()

        second = SiteSupervisor(config, policy=policy, store=store)
        assert second.restore()
        assert second.epoch_index == 8
        assert second.fusion.n_reports == first.fusion.n_reports
        assert second.believed_dead == first.believed_dead

    def test_restore_without_checkpoint_is_a_cold_start(self, tmp_path):
        supervisor = SiteSupervisor(
            make_config(), store=CheckpointStore(tmp_path / "none.ckpt")
        )
        assert not supervisor.restore()
        assert supervisor.epoch_index == 0


class TestHealthWiring:
    def test_failover_slo_scores_each_episode(self, tmp_path):
        health = SiteHealthMonitor(
            policy=HealthPolicy(failover_ceiling_s=1.0, coverage_floor=0.3)
        )
        supervisor = SiteSupervisor(
            make_config(ONE_OUTAGE),
            policy=SitePolicy(epoch_s=0.25),
            health=health,
        )
        report = supervisor.run(12)
        failover = report.slo["failover_time"]
        assert failover["observations"] == 1
        assert failover["errors"] == 0
        coverage = report.slo["coverage_floor"]
        assert coverage["observations"] == 12
