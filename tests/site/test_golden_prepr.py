"""Golden differential: the fault-free site run is frozen byte-for-byte.

``tests/golden/site_empty_faults_*.json`` were generated before the
site-resilience layer existed (no ``faults`` field on ``SiteConfig``, no
supervisor).  A default-constructed :class:`SiteFaultPlan` must leave
``simulate_site`` — RNG draws, canonical payload, everything — exactly
as it was, so these runs must still reproduce the committed bytes.  Any
diff here means the no-op contract broke and every historical seed is
silently invalidated.
"""

from pathlib import Path

import pytest

from repro.site.channels import ChannelCoordinator
from repro.site.site import SiteConfig, simulate_site
from repro.site.topology import line_site, ring_site

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

CASES = {
    "site_empty_faults_ring.json": lambda: SiteConfig(
        topology=ring_site(3, 36, radius_m=3.0, range_m=12.0),
        seed=17,
        duration_s=0.1,
        base_read_loss=0.2,
        coordinator=ChannelCoordinator(n_channels=4),
    ),
    "site_empty_faults_line.json": lambda: SiteConfig(
        topology=line_site(3, 30, pitch_m=3.0, range_m=6.0),
        seed=17,
        duration_s=0.1,
        base_read_loss=0.2,
        coordinator=ChannelCoordinator(n_channels=4),
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_empty_fault_plan_reproduces_pre_resilience_bytes(name):
    golden = (GOLDEN_DIR / name).read_bytes()
    run = simulate_site(CASES[name](), workers=1)
    assert run.canonical_bytes() == golden, (
        f"{name}: fault-free site run no longer matches the pre-resilience "
        "golden — the SiteFaultPlan no-op contract is broken"
    )
