"""Differential tests: the sharded site run equals the sequential one.

``simulate_site(config, workers=N)`` must be *byte-identical* to
``workers=1`` — same canonical payload, same merged trace — for any N,
because each reader's simulation is a pure function of ``(config,
reader_id)`` and fusion is order-insensitive.  Checked over several
topologies and hypothesis-drawn seeds.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.exporters import to_jsonl
from repro.obs.tracer import Tracer, use_tracer
from repro.site.channels import ChannelCoordinator
from repro.site.site import SiteConfig, simulate_site
from repro.site.topology import line_site, ring_site

# Small-but-distinct layouts: full overlap, sparse overlap, aisle.
TOPOLOGIES = [
    ring_site(2, 24, radius_m=2.0, range_m=10.0),
    ring_site(4, 16, radius_m=3.0, range_m=12.0),
    line_site(3, 20, pitch_m=3.0, range_m=6.0),
]


def _config(topology, seed):
    return SiteConfig(
        topology=topology,
        seed=seed,
        duration_s=0.08,
        base_read_loss=0.25,
        coordinator=ChannelCoordinator(n_channels=2),
    )


@pytest.mark.parametrize(
    "topology", TOPOLOGIES, ids=[t.name for t in TOPOLOGIES]
)
def test_sharded_matches_sequential(topology):
    config = _config(topology, seed=13)
    reference = simulate_site(config, workers=1)
    sharded = simulate_site(config, workers=topology.n_readers)
    assert sharded.canonical_bytes() == reference.canonical_bytes()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_sharded_matches_sequential_for_any_seed(seed):
    config = _config(TOPOLOGIES[1], seed)
    reference = simulate_site(config, workers=1)
    sharded = simulate_site(config, workers=4)
    assert sharded.canonical_bytes() == reference.canonical_bytes()


def test_worker_grouping_is_invisible():
    """1, 2 and 4 workers all serialise the same payload bytes."""
    config = _config(TOPOLOGIES[1], seed=5)
    payloads = {
        workers: simulate_site(config, workers=workers).canonical_bytes()
        for workers in (1, 2, 4)
    }
    assert payloads[1] == payloads[2] == payloads[4]


def test_merged_traces_identical():
    """The absorbed worker traces replay the sequential trace exactly."""
    config = _config(TOPOLOGIES[0], seed=3)
    exports = {}
    for workers in (1, 2):
        tracer = Tracer()
        with use_tracer(tracer):
            simulate_site(config, workers=workers)
        exports[workers] = to_jsonl(tracer)
    assert exports[1] == exports[2]


def test_run_is_deterministic_across_fresh_processeses():
    """Two fresh sharded runs of the same config are byte-identical."""
    config = _config(TOPOLOGIES[2], seed=21)
    first = simulate_site(config, workers=3).canonical_bytes()
    second = simulate_site(config, workers=3).canonical_bytes()
    assert first == second
