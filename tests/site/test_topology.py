"""Units for site topologies and the channel coordinator."""

import math

import pytest

from repro.site.channels import MAX_INTERFERENCE_LOSS, ChannelCoordinator
from repro.site.topology import (
    ReaderPlacement,
    SiteTopology,
    line_site,
    ring_site,
)


class TestReaderPlacement:
    def test_round_trips_through_dict(self):
        placement = ReaderPlacement(3, (1.0, -2.0, 1.5), range_m=7.0)
        assert ReaderPlacement.from_dict(placement.to_dict()) == placement

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ReaderPlacement(-1, (0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            ReaderPlacement(0, (0.0, 0.0))
        with pytest.raises(ValueError):
            ReaderPlacement(0, (0.0, 0.0, 0.0), range_m=0.0)


class TestSiteTopology:
    def test_round_trips_through_dict(self):
        topology = ring_site(3, 50)
        assert SiteTopology.from_dict(topology.to_dict()) == topology

    def test_reader_lookup(self):
        topology = line_site(4, 10)
        assert topology.reader(2).reader_id == 2
        with pytest.raises(KeyError):
            topology.reader(9)

    def test_tag_grid_is_centred_and_complete(self):
        topology = ring_site(2, 45)
        positions = topology.tag_positions()
        assert len(positions) == 45
        # Full rows are symmetric about the field centre in x.
        cx = topology.field_center[0]
        row = positions[: topology.columns]
        assert math.isclose(row[0][0] + row[-1][0], 2 * cx, abs_tol=1e-9)
        # All tags share the field height.
        assert {p[2] for p in positions} == {topology.field_center[2]}

    def test_rejects_duplicate_reader_ids(self):
        readers = (
            ReaderPlacement(0, (0.0, 0.0, 1.0)),
            ReaderPlacement(0, (1.0, 0.0, 1.0)),
        )
        with pytest.raises(ValueError):
            SiteTopology(name="dup", readers=readers, n_tags=4)

    def test_ring_readers_equidistant_from_centre(self):
        topology = ring_site(5, 10, radius_m=3.0)
        for placement in topology.readers:
            x, y, _ = placement.position
            assert math.isclose(math.hypot(x, y), 3.0, abs_tol=1e-6)

    def test_line_readers_evenly_pitched(self):
        topology = line_site(3, 10, pitch_m=2.0)
        xs = [p.position[0] for p in topology.readers]
        assert xs == sorted(xs)
        assert math.isclose(xs[1] - xs[0], 2.0, abs_tol=1e-9)
        assert math.isclose(xs[2] - xs[1], 2.0, abs_tol=1e-9)


class TestChannelCoordinator:
    def test_round_trips_through_dict(self):
        coordinator = ChannelCoordinator(n_channels=4, co_channel_loss=0.2)
        assert (
            ChannelCoordinator.from_dict(coordinator.to_dict()) == coordinator
        )

    def test_assignment_is_round_robin(self):
        coordinator = ChannelCoordinator(n_channels=2)
        topology = ring_site(4, 10)
        assert coordinator.assign(topology) == {0: 0, 1: 1, 2: 0, 3: 1}

    def test_reader_plan_rotates_but_preserves_spectrum(self):
        coordinator = ChannelCoordinator(n_channels=8)
        base = coordinator.base_plan()
        rotated = coordinator.reader_plan(3)
        assert sorted(rotated.frequencies_hz) == sorted(base.frequencies_hz)
        assert rotated.frequencies_hz[0] == base.frequencies_hz[3]
        assert rotated.hop_dwell_s == base.hop_dwell_s

    def test_lone_reader_suffers_no_interference(self):
        coordinator = ChannelCoordinator(n_channels=2)
        assert coordinator.interference_loss(ring_site(1, 10)) == {0: 0.0}

    def test_co_channel_neighbours_hurt_more_than_adjacent(self):
        coordinator = ChannelCoordinator(
            n_channels=2, co_channel_loss=0.1, adjacent_loss=0.02
        )
        # ring-4 on 2 channels: each reader has 1 co-channel (opposite) and
        # 2 adjacent-channel neighbours, all within reuse distance.
        losses = coordinator.interference_loss(ring_site(4, 10, radius_m=3.0))
        assert losses == {k: round(0.1 + 2 * 0.02, 9) for k in range(4)}
        # ring-2 on 2 channels: the only neighbour is off-channel.
        losses2 = coordinator.interference_loss(ring_site(2, 10, radius_m=3.0))
        assert losses2 == {0: 0.02, 1: 0.02}

    def test_distance_gates_interference(self):
        coordinator = ChannelCoordinator(n_channels=1, reuse_distance_m=1.0)
        losses = coordinator.interference_loss(line_site(2, 10, pitch_m=5.0))
        assert losses == {0: 0.0, 1: 0.0}

    def test_loss_saturates_at_cap(self):
        coordinator = ChannelCoordinator(n_channels=1, co_channel_loss=0.5)
        losses = coordinator.interference_loss(ring_site(6, 10, radius_m=1.0))
        assert set(losses.values()) == {MAX_INTERFERENCE_LOSS}

    def test_rejects_adjacent_above_co_channel(self):
        with pytest.raises(ValueError):
            ChannelCoordinator(co_channel_loss=0.05, adjacent_loss=0.1)
