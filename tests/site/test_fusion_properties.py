"""Property tests: the fusion layer is a commutative, idempotent fold.

The sharded site runner fuses worker outputs in whatever grouping the
topology dictates; these properties are what make any grouping safe.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.site.fusion import FusionLayer, TagReport

# Small domains force key collisions (same read reported twice) as well as
# distinct reads of the same EPC — both regimes matter.
reports = st.builds(
    TagReport,
    epc_value=st.integers(min_value=1, max_value=8),
    reader_id=st.integers(min_value=0, max_value=3),
    time_s=st.sampled_from([0.0, 0.125, 0.25, 0.5, 1.0]),
    antenna_index=st.integers(min_value=0, max_value=1),
    channel_index=st.integers(min_value=0, max_value=3),
    phase_rad=st.floats(0.0, 6.25, allow_nan=False),
    rss_dbm=st.floats(-80.0, -40.0, allow_nan=False),
)

report_batches = st.lists(reports, max_size=40)


def _snapshot_bytes(layer):
    return json.dumps(layer.snapshot(), sort_keys=True).encode()


def _fused(batch):
    layer = FusionLayer()
    layer.ingest_many(batch)
    return layer


@settings(max_examples=80, deadline=None)
@given(report_batches)
def test_idempotent(batch):
    """Replaying everything already fused changes nothing."""
    layer = _fused(batch)
    before = _snapshot_bytes(layer)
    assert layer.ingest_many(batch) == 0
    assert layer.merge(_fused(batch)) == 0
    assert _snapshot_bytes(layer) == before


@settings(max_examples=80, deadline=None)
@given(report_batches, st.randoms(use_true_random=False))
def test_commutative_across_ingest_order(batch, rng):
    """Any permutation of the report stream fuses to identical bytes."""
    shuffled = list(batch)
    rng.shuffle(shuffled)
    assert _snapshot_bytes(_fused(batch)) == _snapshot_bytes(_fused(shuffled))


@settings(max_examples=60, deadline=None)
@given(report_batches, report_batches)
def test_merge_commutes_across_reader_grouping(a, b):
    """merge(A, B) == merge(B, A) == ingest(A + B), byte for byte."""
    ab = _fused(a)
    ab.merge(_fused(b))
    ba = _fused(b)
    ba.merge(_fused(a))
    flat = _fused(a + b)
    assert _snapshot_bytes(ab) == _snapshot_bytes(ba) == _snapshot_bytes(flat)


@settings(max_examples=80, deadline=None)
@given(report_batches)
def test_never_drops_a_report(batch):
    """Every distinct physical read survives fusion, none invented."""
    layer = _fused(batch)
    expected = {report.key for report in batch}
    assert {report.key for report in layer.reports()} == expected
    assert layer.n_reports == len(expected)
    assert set(layer.epc_values()) == {report.epc_value for report in batch}


@settings(max_examples=80, deadline=None)
@given(report_batches.filter(bool))
def test_arbitration_picks_the_global_maximum(batch):
    """Each record's latest sighting is the arbitration-order maximum."""
    layer = _fused(batch)
    for record in layer.records():
        own = [r for r in batch if r.epc_value == record.epc_value]
        best = max(own, key=lambda r: r.arbitration_order)
        assert record.latest.arbitration_order == best.arbitration_order
        assert record.last_seen_s == round(best.time_s, 9)


@settings(max_examples=60, deadline=None)
@given(report_batches)
def test_provenance_accounts_for_every_report(batch):
    """Per-reader tallies partition the fused report set exactly."""
    layer = _fused(batch)
    total = sum(
        sum(record.reports_by_reader.values()) for record in layer.records()
    )
    assert total == layer.n_reports
    assert sum(layer.reports_by_reader().values()) == layer.n_reports


@settings(max_examples=40, deadline=None)
@given(reports)
def test_report_row_round_trip(report):
    """The picklable row form reproduces the dedup key exactly."""
    assert TagReport.from_row(report.to_row()).key == report.key
