"""The site invariant suite: catches fusion bugs, passes healthy runs."""

import pytest

from repro.runtime.invariants import SiteInvariantSuite
from repro.site.channels import ChannelCoordinator
from repro.site.fusion import FusionLayer, TagReport
from repro.site.site import SiteConfig, simulate_site
from repro.site.topology import ring_site


def _report(epc=1, reader=0, t=0.5, antenna=0, channel=0):
    return TagReport(
        epc_value=epc,
        reader_id=reader,
        time_s=t,
        antenna_index=antenna,
        channel_index=channel,
        phase_rad=1.0,
        rss_dbm=-55.0,
    )


def test_requires_a_population():
    with pytest.raises(ValueError):
        SiteInvariantSuite([])


def test_clean_fusion_passes():
    fusion = FusionLayer()
    fusion.ingest_many(
        [_report(1, 0, 0.1), _report(1, 1, 0.2), _report(2, 1, 0.3)]
    )
    suite = SiteInvariantSuite([1, 2, 3])
    assert suite.check(fusion) == []
    assert suite.ok


def test_flags_phantom_epcs():
    fusion = FusionLayer()
    fusion.ingest(_report(epc=99))
    suite = SiteInvariantSuite([1, 2])
    names = [v.name for v in suite.check(fusion)]
    assert "phantom-epc-fused" in names
    assert not suite.ok


def test_flags_provenance_mismatch():
    fusion = FusionLayer()
    fusion.ingest_many([_report(1, 0, 0.1), _report(1, 1, 0.2)])
    record = fusion.record(1)
    record.n_reports += 1  # corrupt the tally
    suite = SiteInvariantSuite([1])
    names = [v.name for v in suite.check(fusion)]
    assert "provenance-mismatch" in names


def test_flags_stale_arbitration():
    fusion = FusionLayer()
    fusion.ingest_many([_report(1, 0, 0.1), _report(1, 1, 0.2)])
    fusion.record(1).latest = _report(1, 0, 0.1)  # stale winner
    suite = SiteInvariantSuite([1])
    names = [v.name for v in suite.check(fusion)]
    assert "stale-arbitration" in names


def test_violations_accumulate_with_cycle_index():
    fusion = FusionLayer()
    fusion.ingest(_report(epc=99))
    suite = SiteInvariantSuite([1])
    suite.check(fusion, cycle_index=0)
    suite.check(fusion, cycle_index=7)
    assert [v.cycle_index for v in suite.violations] == [0, 7]


def test_real_site_run_upholds_every_invariant():
    """End to end: a sharded site run passes the whole suite."""
    config = SiteConfig(
        topology=ring_site(3, 30, radius_m=2.5, range_m=12.0),
        seed=11,
        duration_s=0.1,
        base_read_loss=0.2,
        coordinator=ChannelCoordinator(n_channels=2),
    )
    run = simulate_site(config, workers=3)
    suite = SiteInvariantSuite(run.truth_epc_values)
    assert suite.check(run.fusion) == []
    assert suite.ok
