"""Culling safety: visibility-culled shards are provably behaviour-neutral.

The site fast path hands each reader only the tags its antenna could ever
power (``reachable_tag_indices``), with a guard band three orders of
magnitude wider than the scene's own range fold.  These properties pin the
two halves of that argument on drawn topologies and seeds:

- *neutrality* — the culled simulation's canonical payload is
  byte-identical to the unculled one (with the reference fusion engine on
  both sides, so the check isolates the cull);
- *safety* — every tag a reader actually reports in the full simulation
  is inside its culled shard (the cull never drops a reachable tag);
- *effectiveness* — on an aisle whose far end lies beyond the antenna
  range, the cull genuinely shrinks the shard (the fast path engages).
"""

from hypothesis import given, settings, strategies as st

from repro.site.channels import ChannelCoordinator
from repro.site.site import (
    SiteConfig,
    reachable_tag_indices,
    simulate_site,
    site_epcs,
)
from repro.site.topology import line_site, ring_site


def _config(layout, n_readers, n_tags, seed, loss, n_mobile):
    if layout == "ring":
        topology = ring_site(n_readers, n_tags, radius_m=3.0, range_m=9.0)
    else:
        # Short range over a long aisle: distant grid columns fall outside
        # each reader's reach, so the cull has real work to do.
        topology = line_site(n_readers, n_tags, pitch_m=3.0, range_m=5.0)
    return SiteConfig(
        topology=topology,
        seed=seed,
        duration_s=0.08,
        base_read_loss=loss,
        coordinator=ChannelCoordinator(n_channels=4),
        n_mobile=n_mobile,
    )


site_settings = st.fixed_dictionaries(
    {
        "layout": st.sampled_from(["ring", "line"]),
        "n_readers": st.integers(min_value=1, max_value=4),
        "n_tags": st.sampled_from([24, 60, 150]),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
        "loss": st.sampled_from([0.0, 0.3]),
        "n_mobile": st.integers(min_value=0, max_value=3),
    }
)


@settings(max_examples=12, deadline=None)
@given(site_settings)
def test_culled_site_is_byte_identical(params):
    """Culled ≡ unculled, byte for byte, on drawn topologies and seeds."""
    config = _config(**params)
    culled = simulate_site(
        config, workers=1, cull=True, fusion_engine="reference"
    )
    full = simulate_site(
        config, workers=1, cull=False, fusion_engine="reference"
    )
    assert culled.canonical_bytes() == full.canonical_bytes()


@settings(max_examples=12, deadline=None)
@given(site_settings)
def test_cull_keeps_every_reported_tag(params):
    """No reader ever reports an EPC its culled shard would have dropped."""
    config = _config(**params)
    epcs = site_epcs(config)
    full = simulate_site(
        config, workers=1, cull=False, fusion_engine="reference"
    )
    for summary in full.reader_summaries:
        indices = reachable_tag_indices(config, summary["reader_id"])
        if indices is None:
            continue  # nothing culled: trivially safe
        shard_epcs = {epcs[i].value for i in indices}
        reported = {int(row[0], 16) for row in summary["reports"]}
        assert reported <= shard_epcs


def test_cull_shrinks_long_aisle_shards():
    """On a long line site the end readers cannot see the far end."""
    config = _config(
        layout="line", n_readers=6, n_tags=400, seed=3, loss=0.0, n_mobile=0
    )
    sizes = []
    for placement in config.topology.readers:
        indices = reachable_tag_indices(config, placement.reader_id)
        assert indices is not None, "a 6-reader aisle must cull something"
        sizes.append(len(indices))
    assert max(sizes) < config.topology.n_tags
    # The shards still jointly cover enough of the field to be a site.
    assert sum(sizes) > config.topology.n_tags


def test_ring_site_culls_nothing():
    """Full-overlap rings keep every tag (the cull returns None)."""
    config = _config(
        layout="ring", n_readers=3, n_tags=60, seed=0, loss=0.0, n_mobile=0
    )
    for placement in config.topology.readers:
        assert reachable_tag_indices(config, placement.reader_id) is None


def test_mobile_tags_culled_by_orbit_not_grid_slot():
    """Orbiting tags are judged by their whole trajectory, not one point.

    A mobile tag's orbit sweeps across reader zones, so a reader that
    cannot power the tag's *grid slot* may still read it mid-orbit — the
    cull must use the trajectory's distance lower bound.  Neutrality on a
    mobile-heavy aisle pins exactly that: any shard that wrongly culled a
    crossing tag would lose its reads and change the canonical payload.
    """
    config = _config(
        layout="line", n_readers=6, n_tags=400, seed=1, loss=0.1, n_mobile=8
    )
    from repro.site.site import mobile_tag_indices

    mobile = mobile_tag_indices(config)
    assert mobile
    kept_somewhere = set()
    for placement in config.topology.readers:
        indices = reachable_tag_indices(config, placement.reader_id)
        assert indices is not None
        kept_somewhere.update(set(indices) & mobile)
    # Orbits through the aisle pass at least one reader's zone.
    assert kept_somewhere
    culled = simulate_site(
        config, workers=1, cull=True, fusion_engine="reference"
    )
    full = simulate_site(
        config, workers=1, cull=False, fusion_engine="reference"
    )
    assert culled.canonical_bytes() == full.canonical_bytes()
