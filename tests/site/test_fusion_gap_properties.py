"""Feed stop/resume properties: fusion is gap- and replay-insensitive.

When a reader dies mid-run its report feed stops; at rejoin the
supervisor replays the checkpointed reports and the feed resumes.  For
that to be safe, fusing a stream that was cut into segments — in any
order, with any segment replayed any number of times — must produce the
layer that fusing the uninterrupted stream would have.  These
hypothesis properties are exactly that statement.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.site.fusion import FusionLayer, TagReport

reports = st.builds(
    TagReport,
    epc_value=st.integers(min_value=1, max_value=10),
    reader_id=st.integers(min_value=0, max_value=3),
    time_s=st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.5, 2.0]),
    antenna_index=st.integers(min_value=0, max_value=1),
    channel_index=st.integers(min_value=0, max_value=3),
    phase_rad=st.floats(0.0, 6.25, allow_nan=False),
    rss_dbm=st.floats(-80.0, -40.0, allow_nan=False),
)

streams = st.lists(reports, max_size=30)

# Cut points splitting one stream into up-to-4 feed segments (the gaps
# between them are where the reader was down — fusion never sees those).
cuts = st.lists(st.integers(min_value=0, max_value=30), max_size=3)


def segments_of(stream, cut_points):
    bounds = sorted({min(c, len(stream)) for c in cut_points})
    segments, start = [], 0
    for bound in bounds + [len(stream)]:
        segments.append(stream[start:bound])
        start = bound
    return segments


def bytes_of(layer):
    return json.dumps(layer.snapshot(), sort_keys=True).encode()


def fused(batch):
    layer = FusionLayer()
    layer.ingest_many(batch)
    return layer


@settings(max_examples=80, deadline=None)
@given(streams, cuts, st.randoms(use_true_random=False))
def test_stop_resume_segments_fuse_like_the_contiguous_stream(
    stream, cut_points, rng
):
    """Cutting a feed into segments and fusing them in any order is lossless."""
    segments = segments_of(stream, cut_points)
    rng.shuffle(segments)
    layer = FusionLayer()
    for segment in segments:
        layer.ingest_many(segment)
    assert bytes_of(layer) == bytes_of(fused(stream))


@settings(max_examples=80, deadline=None)
@given(streams, cuts, st.integers(min_value=0, max_value=3))
def test_rejoin_replay_is_idempotent(stream, cut_points, replayed_index):
    """Replaying any segment after a rejoin absorbs nothing new."""
    segments = segments_of(stream, cut_points)
    layer = FusionLayer()
    for segment in segments:
        layer.ingest_many(segment)
    before = bytes_of(layer)
    replay = segments[replayed_index % len(segments)]
    assert layer.ingest_many(replay) == 0
    assert bytes_of(layer) == before


@settings(max_examples=60, deadline=None)
@given(streams, streams, streams)
def test_merge_order_of_gapped_layers_is_irrelevant(a, b, c):
    """Per-reader layers with gaps merge to one result in any order."""
    orders = [(a, b, c), (c, a, b), (b, c, a)]
    merged = []
    for order in orders:
        layer = fused(order[0])
        layer.merge(fused(order[1]))
        layer.merge(fused(order[2]))
        merged.append(bytes_of(layer))
    assert merged[0] == merged[1] == merged[2]
