"""Golden-trace regression tests: byte-stable replay of seeded deployments.

Each scenario runs a fully seeded deployment (clean, and faulted) and
serialises what the engine produced — per-cycle decisions, the complete
observation trace, and the metrics export — into canonical JSON.  The test
asserts the serialisation is *byte-identical* to the checked-in golden file,
which pins down both behaviour and determinism: any change to RNG plumbing,
fault draws, scheduling, or float rounding shows up as a diff.

Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.core import TagwatchConfig
from repro.experiments.harness import build_lab
from repro.faults import FaultPlan

GOLDEN_DIR = Path(__file__).parent / "golden"


def _obs_row(obs):
    """One observation as a stable JSON row (floats rounded to 9 places)."""
    return [
        format(obs.epc.value, "x"),
        round(obs.time_s, 9),
        round(obs.phase_rad, 9),
        round(obs.rss_dbm, 9),
        obs.antenna_index,
        obs.channel_index,
    ]


def _cycle_record(result):
    """One CycleResult as a stable JSON object."""
    return {
        "index": result.index,
        "fallback": result.fallback,
        "fallback_reason": result.fallback_reason,
        "degraded": result.degraded,
        "targets": sorted(format(v, "x") for v in result.target_epc_values),
        "n_tags_seen": result.n_tags_seen,
        "phase1_start_s": round(result.phase1_start_s, 9),
        "phase1_end_s": round(result.phase1_end_s, 9),
        "phase2_end_s": round(result.phase2_end_s, 9),
        "phase1_observations": [_obs_row(o) for o in result.phase1_observations],
        "phase2_observations": [_obs_row(o) for o in result.phase2_observations],
    }


def _run_scenario(fault_plan):
    """Run the canonical small deployment and serialise everything it did."""
    setup = build_lab(
        n_tags=8,
        n_mobile=1,
        seed=97,
        partition=True,
        fault_plan=fault_plan,
    )
    tagwatch = setup.tagwatch(
        TagwatchConfig(
            phase2_duration_s=0.5,
            min_phase1_fraction=0.5,
            population_grace_cycles=2,
        )
    )
    tagwatch.warm_up(4.0)
    cycles = [tagwatch.run_cycle() for _ in range(3)]
    payload = {
        "scenario": {
            "n_tags": 8,
            "n_mobile": 1,
            "seed": 97,
            "fault_plan": fault_plan.to_dict() if fault_plan else None,
        },
        "cycles": [_cycle_record(c) for c in cycles],
    }
    if setup.metrics is not None:
        payload["metrics"] = setup.metrics.to_dict()
    return payload


def _canonical(payload):
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _check_golden(name, payload, update):
    path = GOLDEN_DIR / f"{name}.json"
    text = _canonical(payload)
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        return
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing; generate it with --update-golden"
        )
    assert path.read_text() == text, (
        f"{name}: trace diverged from golden file; if the change is "
        "intentional, regenerate with --update-golden"
    )


def test_golden_clean_run(update_golden):
    """The fault-free deployment replays byte-identically."""
    _check_golden("tagwatch_clean", _run_scenario(None), update_golden)


def test_golden_faulted_run(update_golden):
    """A lossy + disconnecting deployment replays byte-identically."""
    plan = FaultPlan(
        report_loss=0.15,
        phase_spike=0.05,
        duplicate=0.05,
        disconnect_at_s=(5.0,),
    )
    _check_golden("tagwatch_faulted", _run_scenario(plan), update_golden)


def test_golden_noop_plan_matches_clean(update_golden):
    """FaultPlan.none() produces the same trace as no plan at all.

    The injector and resilient client are in the loop but must draw nothing:
    the acceptance criterion that a zero plan is a strict no-op.
    """
    del update_golden  # this test compares two live runs, not a file
    clean = _run_scenario(None)
    noop = _run_scenario(FaultPlan.none())
    assert clean["cycles"] == noop["cycles"]


def test_scenario_is_deterministic():
    """Two fresh runs of the faulted scenario are byte-identical."""
    plan = FaultPlan(report_loss=0.2, disconnect_at_s=(5.0,))
    first = _canonical(_run_scenario(plan))
    second = _canonical(_run_scenario(plan))
    assert first == second
