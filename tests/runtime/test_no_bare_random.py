"""Lint: no unseeded randomness in the library.

Every stochastic choice in ``src/`` must flow through a seeded
``numpy.random.Generator`` (see ``repro.util.rng``) so that soak runs,
golden traces, and crash-replay tests stay reproducible.  The stdlib
``random`` module's global state would silently break all of that.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"

IMPORT_PATTERN = re.compile(
    r"^\s*(?:import\s+random\b|from\s+random\s+import\b)", re.MULTILINE
)
# Bare `random.` calls; `np.random`/`numpy.random` don't match because of
# the preceding dot, and words like `self.random_state` don't either.
USAGE_PATTERN = re.compile(r"(?<![\w.])random\.")


def python_sources():
    files = sorted(SRC.rglob("*.py"))
    assert files, f"no sources under {SRC}"
    return files


def test_scan_covers_the_site_package():
    """The lint walks every package — repro.site must not escape it.

    The site subsystem's whole sharding story rests on seeded determinism,
    so this guards against the scan silently narrowing (e.g. to an explicit
    package list) and letting unseeded randomness into new code.
    """
    scanned = {str(path.relative_to(SRC)) for path in python_sources()}
    assert "repro/site/site.py" in scanned
    assert "repro/site/fusion.py" in scanned
    assert "repro/site/channels.py" in scanned


def test_no_stdlib_random_imports():
    offenders = [
        str(path.relative_to(SRC))
        for path in python_sources()
        if IMPORT_PATTERN.search(path.read_text(encoding="utf-8"))
    ]
    assert offenders == [], (
        f"stdlib `random` imported in {offenders}; use a seeded "
        "numpy Generator from repro.util.rng instead"
    )


def test_no_bare_random_usage():
    offenders = []
    for path in python_sources():
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            stripped = line.split("#", 1)[0]
            if USAGE_PATTERN.search(stripped):
                offenders.append(f"{path.relative_to(SRC)}:{number}: {line.strip()}")
    assert offenders == [], (
        "bare `random.` usage found (unseeded global RNG):\n"
        + "\n".join(offenders)
    )
