"""Crash at every cycle boundary; warm restart must re-converge quickly.

The strongest correctness claim the runtime makes is that a crash at an
arbitrary point costs bounded accuracy: after a warm restore from the
latest checkpoint, the supervised run reaches the same per-cycle moving
verdicts as an uninterrupted run within two cycles.  This test kills the
supervisor after *every* cycle boundary of a short run and checks exactly
that.
"""

import pytest

from repro.core import TagwatchConfig
from repro.experiments.harness import build_lab
from repro.runtime import CheckpointStore, Supervisor, SupervisorConfig

SEED = 11
N_CYCLES = 6
CONVERGE_WITHIN = 2
CONFIG = TagwatchConfig(phase2_duration_s=0.5, population_grace_cycles=2)


def moving_set(result):
    return {
        value
        for value, verdict in result.assessments.items()
        if verdict.moving
    }


def fresh_lab():
    return build_lab(n_tags=10, n_mobile=2, seed=SEED)


@pytest.fixture(scope="module")
def reference():
    """Per-cycle moving verdicts of an uninterrupted run."""
    lab = fresh_lab()
    tagwatch = lab.tagwatch(CONFIG)
    tagwatch.warm_up(10.0)
    return [moving_set(tagwatch.run_cycle()) for _ in range(N_CYCLES)]


@pytest.mark.parametrize("boundary", range(1, N_CYCLES - CONVERGE_WITHIN))
def test_warm_restart_converges_within_two_cycles(
    tmp_path, boundary, reference
):
    lab = fresh_lab()
    store = CheckpointStore(tmp_path / "ckpt.json", retain=2)
    supervisor = Supervisor(
        lambda: lab.tagwatch(CONFIG),
        config=SupervisorConfig(checkpoint_every=1),
        store=store,
    )
    assert supervisor.start() == "cold"
    supervisor.tagwatch.warm_up(10.0)

    for _ in range(boundary):
        assert supervisor.run_cycle().healthy

    # Simulated power loss between two cycles; the checkpoint written at
    # the end of cycle ``boundary - 1`` is the newest surviving state.
    assert supervisor.force_restart("boundary kill") == "warm"
    assert supervisor.tagwatch._cycle_index == boundary

    post = [supervisor.run_cycle() for _ in range(CONVERGE_WITHIN + 1)]
    assert post[0].after_restart and post[0].forced_fallback
    assert all(cycle.healthy for cycle in post)

    # The first post-restart cycle may disagree (forced full inventory
    # perturbs the read sequence, so slot-level RNG diverges from the
    # uninterrupted run); by the convergence bound the verdicts on every
    # mobile tag must match the reference cycle-for-cycle, and false
    # positives on stationary tags must stay transient flicker at most.
    mobile = lab.mobile_epc_values
    for cycle in post[1:]:
        verdicts = moving_set(cycle.result)
        assert verdicts & mobile == reference[cycle.index] & mobile
        assert len(verdicts - mobile) <= 1
    converged = post[CONVERGE_WITHIN]
    assert converged.index == boundary + CONVERGE_WITHIN


def test_restart_without_any_checkpoint_is_cold(tmp_path):
    lab = fresh_lab()
    store = CheckpointStore(tmp_path / "ckpt.json", retain=2)
    supervisor = Supervisor(
        lambda: lab.tagwatch(CONFIG),
        config=SupervisorConfig(checkpoint_every=0),  # checkpoints disabled
        store=store,
    )
    supervisor.start()
    supervisor.tagwatch.warm_up(10.0)
    supervisor.run(2)
    assert supervisor.force_restart("kill") == "cold"
    assert supervisor.tagwatch._cycle_index == 0
