"""Supervisor: watchdog verdicts, escalation ladder, warm/cold restarts."""

import pytest

from repro.core import TagwatchConfig
from repro.experiments.harness import build_lab
from repro.faults import FaultPlan, ReaderCrash
from repro.runtime import (
    CheckpointStore,
    EscalationLevel,
    Supervisor,
    SupervisorConfig,
    WatchdogPolicy,
)

CONFIG = TagwatchConfig(
    phase2_duration_s=0.5,
    min_phase1_fraction=0.5,
    population_grace_cycles=2,
)


def make_supervisor(tmp_path, seed=7, plan=None, **kwargs):
    lab = build_lab(
        n_tags=10,
        n_mobile=1,
        seed=seed,
        fault_plan=plan or FaultPlan(report_loss=0.02),
    )
    store = CheckpointStore(tmp_path / "ckpt.json", retain=2)
    supervisor = Supervisor(
        lambda: lab.tagwatch(CONFIG),
        config=SupervisorConfig(
            checkpoint_every=kwargs.pop("checkpoint_every", 2),
            watchdog=WatchdogPolicy(**kwargs),
        ),
        store=store,
    )
    return lab, store, supervisor


class TestHealthyOperation:
    def test_healthy_cycles_checkpoint_on_cadence(self, tmp_path):
        lab, store, supervisor = make_supervisor(tmp_path, checkpoint_every=2)
        assert supervisor.start() == "cold"
        cycles = supervisor.run(4)
        assert all(c.healthy for c in cycles)
        assert [c.checkpointed for c in cycles] == [False, True, False, True]
        assert supervisor.checkpoints_written == 2
        assert store.generations()  # snapshots actually landed on disk

    def test_cycle_index_delegates_to_result(self, tmp_path):
        _, _, supervisor = make_supervisor(tmp_path)
        cycle = supervisor.run_cycle()
        assert cycle.index == cycle.result.index == 0


class TestEscalationLadder:
    def test_crash_walks_retry_fullinv_restart(self, tmp_path):
        lab, _, supervisor = make_supervisor(
            tmp_path, checkpoint_every=1, unhealthy_backoff_s=0.5
        )
        supervisor.start()
        supervisor.run(2)  # bank a checkpoint
        first = supervisor.tagwatch
        lab.reader.injector.schedule_crash(
            ReaderCrash(at_s=lab.reader.time_s + 0.2, downtime_s=30.0)
        )
        levels = [supervisor.run_cycle().escalation for _ in range(3)]
        assert levels == [
            EscalationLevel.RETRY,
            EscalationLevel.FULL_INVENTORY,
            EscalationLevel.RESTART,
        ]
        assert supervisor.restarts == 1
        assert supervisor.warm_restarts == 1
        assert supervisor.tagwatch is not first  # rebuilt middleware

    def test_full_inventory_rung_forces_fallback_cycles(self, tmp_path):
        lab, _, supervisor = make_supervisor(
            tmp_path, full_inventory_cycles=2, unhealthy_backoff_s=2.0
        )
        supervisor.start()
        supervisor.run(1)
        lab.reader.injector.schedule_crash(
            ReaderCrash(at_s=lab.reader.time_s + 0.01, downtime_s=30.0)
        )
        strike1 = supervisor.run_cycle()
        strike2 = supervisor.run_cycle()
        assert strike1.escalation == EscalationLevel.RETRY
        assert strike2.escalation == EscalationLevel.FULL_INVENTORY
        # Let the reboot finish, then the forced full-inventory cycles run.
        lab.reader.advance_clock(40.0)
        forced = [supervisor.run_cycle() for _ in range(2)]
        assert all(c.forced_fallback and c.result.fallback for c in forced)
        assert all(c.healthy for c in forced)
        assert not supervisor.run_cycle().forced_fallback  # rung consumed

    def test_unhealthy_cycles_advance_simulated_time(self, tmp_path):
        # A crashed reader fails operations *instantly*; without the
        # supervisor's backoff the clock would freeze and the downtime
        # would never end.
        lab, _, supervisor = make_supervisor(
            tmp_path, unhealthy_backoff_s=3.0
        )
        supervisor.start()
        supervisor.run(1)
        lab.reader.injector.schedule_crash(
            ReaderCrash(at_s=lab.reader.time_s + 0.1, downtime_s=9.0)
        )
        before = lab.reader.time_s
        for _ in range(6):
            if supervisor.run_cycle().healthy:
                break
        assert lab.reader.time_s > before + 3.0
        assert supervisor.run_cycle().healthy  # recovery converged

    def test_max_restarts_gives_up_loudly(self, tmp_path):
        lab, _, supervisor = make_supervisor(
            tmp_path, max_restarts=1, unhealthy_backoff_s=0.1
        )
        supervisor.start()
        supervisor.run(1)
        lab.reader.injector.schedule_crash(
            ReaderCrash(at_s=lab.reader.time_s + 0.1, downtime_s=10_000.0)
        )
        with pytest.raises(RuntimeError, match="exceeded 1 restart"):
            for _ in range(10):
                supervisor.run_cycle()


class TestRestartSemantics:
    def test_force_restart_warm_restores_from_checkpoint(self, tmp_path):
        _, _, supervisor = make_supervisor(tmp_path, checkpoint_every=1)
        supervisor.start()
        supervisor.run(3)
        checkpointed_index = supervisor.tagwatch._cycle_index
        assert supervisor.force_restart("test kill") == "warm"
        assert supervisor.tagwatch._cycle_index == checkpointed_index
        first_back = supervisor.run_cycle()
        assert first_back.after_restart
        assert first_back.forced_fallback  # full coverage before trusting

    def test_restart_without_store_is_cold(self, tmp_path):
        lab = build_lab(n_tags=10, n_mobile=1, seed=7)
        supervisor = Supervisor(lambda: lab.tagwatch(CONFIG))
        assert supervisor.start() == "cold"
        supervisor.run(2)
        assert supervisor.force_restart("kill") == "cold"
        assert supervisor.tagwatch._cycle_index == 0  # relearning from zero

    def test_config_hash_mismatch_degrades_to_cold_start(self, tmp_path):
        # A snapshot from a different deployment must be rejected, not
        # resumed: the learned state would poison the new run.
        _, store, supervisor = make_supervisor(tmp_path, checkpoint_every=1)
        supervisor.start()
        supervisor.run(2)
        lab2 = build_lab(
            n_tags=12,  # different population -> different fingerprint
            n_mobile=1,
            seed=7,
            fault_plan=FaultPlan(report_loss=0.02),
        )
        survivor = Supervisor(
            lambda: lab2.tagwatch(CONFIG),
            config=SupervisorConfig(checkpoint_every=1),
            store=store,
        )
        assert survivor.start() == "cold"
        assert survivor.cold_starts == 1
        assert survivor.run_cycle().healthy

    def test_subscribers_survive_supervised_restarts(self, tmp_path):
        _, _, supervisor = make_supervisor(tmp_path, checkpoint_every=1)
        received = []
        supervisor.subscribe(received.append)
        supervisor.start()
        supervisor.run(2)
        before = len(received)
        assert before > 0
        supervisor.force_restart("kill")
        supervisor.run_cycle()
        assert len(received) > before  # delivery continued after rebuild


class TestSessionRecovery:
    def test_session_reestablished_after_reader_reboot(self, tmp_path):
        lab, _, supervisor = make_supervisor(
            tmp_path, checkpoint_every=1, unhealthy_backoff_s=4.0
        )
        supervisor.start()
        supervisor.run(1)
        lab.reader.injector.schedule_crash(
            ReaderCrash(at_s=lab.reader.time_s + 0.1, downtime_s=6.0)
        )
        for _ in range(8):
            if supervisor.run_cycle().healthy:
                break
        assert lab.reader.session_epoch == 1
        counters = lab.metrics.to_dict()
        restored = counters.get("client.sessions_reestablished", {})
        recovered = counters.get("client.session_recoveries", {})
        assert (
            restored.get("value", 0) + recovered.get("value", 0) >= 1
        ), "no session re-establishment was recorded"


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cycle_deadline_s": 0.0},
            {"phase_deadline_s": -1.0},
            {"keepalive_gap_s": 0.0},
            {"unhealthy_backoff_s": -0.1},
            {"full_inventory_cycles": 0},
            {"max_restarts": -1},
        ],
    )
    def test_bad_watchdog_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WatchdogPolicy(**kwargs)

    def test_negative_checkpoint_cadence_rejected(self):
        with pytest.raises(ValueError):
            SupervisorConfig(checkpoint_every=-1)
