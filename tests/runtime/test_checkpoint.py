"""Checkpoint envelopes, rotation, corruption handling, config hashes."""

import json

import pytest

from repro.core import TagwatchConfig
from repro.core.persistence import (
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotMismatchError,
    payload_checksum,
    read_snapshot,
    write_snapshot,
)
from repro.experiments.harness import build_lab
from repro.runtime import (
    CheckpointStore,
    CheckpointUnavailable,
    config_fingerprint,
)

PAYLOAD = {"cycle_index": 7, "modes": [1.0, 2.5], "registry": {"ab": 3}}


class TestSnapshotEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snap.json"
        n_bytes = write_snapshot(
            path, PAYLOAD, config_hash="cafe", sim_time_s=12.5, cycle_index=7
        )
        assert n_bytes == path.stat().st_size > 0
        envelope = read_snapshot(path, expected_config_hash="cafe")
        assert envelope["payload"] == PAYLOAD
        assert envelope["config_hash"] == "cafe"
        assert envelope["sim_time_s"] == 12.5
        assert envelope["cycle_index"] == 7
        assert envelope["checksum"] == payload_checksum(PAYLOAD)

    def test_checksum_detects_payload_tampering(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(path, PAYLOAD, config_hash="cafe")
        envelope = json.loads(path.read_text())
        envelope["payload"]["cycle_index"] = 99
        path.write_text(json.dumps(envelope))
        with pytest.raises(SnapshotCorruptionError, match="checksum"):
            read_snapshot(path)

    def test_garbage_bytes_are_corruption_not_a_crash(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_bytes(b"\x00\xff not json at all")
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_truncated_file_is_corruption(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(path, PAYLOAD, config_hash="cafe")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_config_hash_mismatch_is_its_own_error(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(path, PAYLOAD, config_hash="cafe")
        with pytest.raises(SnapshotMismatchError, match="config hash"):
            read_snapshot(path, expected_config_hash="beef")
        # Not passing a hash skips the check entirely.
        assert read_snapshot(path)["payload"] == PAYLOAD


class TestCheckpointStore:
    def test_rotation_keeps_newest_generations(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.json", retain=2)
        for cycle in range(3):
            store.save({"cycle": cycle}, config_hash="h", cycle_index=cycle)
        generations = store.generations()
        assert [p.name for p in generations] == ["ckpt.json", "ckpt.json.1"]
        newest = read_snapshot(generations[0])
        previous = read_snapshot(generations[1])
        assert newest["payload"] == {"cycle": 2}
        assert previous["payload"] == {"cycle": 1}  # cycle 0 rotated out

    def test_load_latest_returns_newest(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.json", retain=3)
        for cycle in range(2):
            store.save({"cycle": cycle}, config_hash="h")
        envelope, path = store.load_latest(expected_config_hash="h")
        assert envelope["payload"] == {"cycle": 1}
        assert path == store.generation_path(0)

    def test_load_latest_skips_corrupt_generation(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.json", retain=2)
        store.save({"cycle": 0}, config_hash="h")
        store.save({"cycle": 1}, config_hash="h")
        newest = store.generation_path(0)
        newest.write_bytes(b"\x84\x00 corrupted at rest")
        envelope, path = store.load_latest(expected_config_hash="h")
        assert envelope["payload"] == {"cycle": 0}
        assert path == store.generation_path(1)

    def test_unavailable_when_every_generation_is_bad(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.json", retain=2)
        with pytest.raises(CheckpointUnavailable):
            store.load_latest()
        store.save({"cycle": 0}, config_hash="h")
        store.generation_path(0).write_bytes(b"junk")
        with pytest.raises(CheckpointUnavailable):
            store.load_latest()

    def test_mismatch_propagates_instead_of_degrading_to_older(self, tmp_path):
        # An older generation would mismatch too: the caller must know to
        # cold-start rather than silently resume an incompatible snapshot.
        store = CheckpointStore(tmp_path / "ckpt.json", retain=2)
        store.save({"cycle": 0}, config_hash="deployment-a")
        store.save({"cycle": 1}, config_hash="deployment-a")
        with pytest.raises(SnapshotMismatchError):
            store.load_latest(expected_config_hash="deployment-b")

    def test_retain_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path / "ckpt.json", retain=0)


class TestConfigFingerprint:
    def test_stable_for_identical_deployments(self):
        a = build_lab(n_tags=8, n_mobile=1, seed=3)
        b = build_lab(n_tags=8, n_mobile=1, seed=3)
        config = TagwatchConfig()
        assert config_fingerprint(a.scene, config) == config_fingerprint(
            b.scene, config
        )

    def test_differs_when_population_size_differs(self):
        config = TagwatchConfig()
        a = build_lab(n_tags=8, n_mobile=1, seed=3)
        b = build_lab(n_tags=9, n_mobile=1, seed=3)
        assert config_fingerprint(a.scene, config) != config_fingerprint(
            b.scene, config
        )

    def test_differs_when_model_knobs_differ(self):
        lab = build_lab(n_tags=8, n_mobile=1, seed=3)
        base = config_fingerprint(lab.scene, TagwatchConfig())
        changed = config_fingerprint(
            lab.scene, TagwatchConfig(expire_after_s=123.0)
        )
        assert base != changed

    def test_insensitive_to_presence_churn(self):
        # Blocked intervals model churn without changing the deployment,
        # so a mid-soak checkpoint must stay loadable.
        lab = build_lab(n_tags=8, n_mobile=1, seed=3)
        config = TagwatchConfig()
        before = config_fingerprint(lab.scene, config)
        lab.scene.tags[3].blocked_intervals = ((10.0, 20.0),)
        assert config_fingerprint(lab.scene, config) == before
