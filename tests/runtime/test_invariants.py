"""Invariant suite: phantoms, duplicates, staleness, convergence."""

import pytest

from repro.core import TagwatchConfig
from repro.core.tagwatch import CycleResult
from repro.experiments.harness import build_lab
from repro.gen2.epc import EPC
from repro.gen2.inventory import InventoryLog
from repro.radio.measurement import TagObservation
from repro.runtime import (
    EscalationLevel,
    InvariantSuite,
    SupervisedCycle,
    Supervisor,
)

CONFIG = TagwatchConfig(phase2_duration_s=0.5)


@pytest.fixture
def lab():
    return build_lab(n_tags=8, n_mobile=2, seed=5)


@pytest.fixture
def supervisor(lab):
    supervisor = Supervisor(lambda: lab.tagwatch(CONFIG))
    supervisor.start()
    return supervisor


def synthetic_cycle(index, t0, observations, healthy=True):
    """A hand-built supervised cycle for exercising single invariants."""
    result = CycleResult(
        index=index,
        phase1_observations=list(observations),
        phase2_observations=[],
        phase1_log=InventoryLog(start_time_s=t0, end_time_s=t0 + 0.1),
        phase2_log=None,
        assessments={},
        target_epc_values=set(),
        plan=None,
        fallback=True,
        fallback_reason="synthetic",
        assessment_wall_s=0.0,
        scheduling_wall_s=0.0,
        phase1_start_s=t0,
        phase1_end_s=t0 + 0.1,
        phase2_end_s=t0 + 0.6,
        degraded=not healthy,
    )
    return SupervisedCycle(
        result=result,
        healthy=healthy,
        reasons=[] if healthy else ["synthetic fault"],
        escalation=EscalationLevel.HEALTHY,
        forced_fallback=False,
        after_restart=False,
        checkpointed=False,
    )


def observation_of(epc, t):
    return TagObservation(
        epc=epc, time_s=t, phase_rad=0.0, rss_dbm=-60.0,
        antenna_index=0, channel_index=0,
    )


class TestCleanRun:
    def test_real_supervised_cycles_raise_no_violations(self, lab, supervisor):
        suite = InvariantSuite(lab.scene, lab.mobile_epc_values)
        for _ in range(5):
            cycle = supervisor.run_cycle()
            assert suite.check(cycle, supervisor.tagwatch) == []
        assert suite.ok


class TestPhantomsAndDuplicates:
    def test_phantom_epc_in_history_is_flagged(self, lab, supervisor):
        suite = InvariantSuite(lab.scene, lab.mobile_epc_values)
        cycle = supervisor.run_cycle()
        phantom = EPC(0xDEADBEEF)
        assert phantom.value not in suite.true_epc_values
        supervisor.tagwatch.history.add(
            observation_of(phantom, lab.reader.time_s)
        )
        names = {v.name for v in suite.check(cycle, supervisor.tagwatch)}
        assert "phantom-epc-history" in names

    def test_phantom_epc_in_registry_is_flagged(self, lab, supervisor):
        suite = InvariantSuite(lab.scene, lab.mobile_epc_values)
        cycle = supervisor.run_cycle()
        supervisor.tagwatch._known_population.append(EPC(0xDEADBEEF))
        names = {v.name for v in suite.check(cycle, supervisor.tagwatch)}
        assert "phantom-epc-registry" in names

    def test_duplicate_registry_entry_is_flagged(self, lab, supervisor):
        suite = InvariantSuite(lab.scene, lab.mobile_epc_values)
        cycle = supervisor.run_cycle()
        population = supervisor.tagwatch._known_population
        population.append(population[0])
        names = {v.name for v in suite.check(cycle, supervisor.tagwatch)}
        assert "duplicate-registry-epc" in names


class TestStaleness:
    def test_mobile_tag_unread_past_bound_is_flagged(self, lab, supervisor):
        suite = InvariantSuite(
            lab.scene, lab.mobile_epc_values, staleness_healthy_cycles=3
        )
        tagwatch = supervisor.tagwatch
        t = 100.0
        for i in range(3):  # at the bound: no violation yet
            cycle = synthetic_cycle(i, t + i, observations=[])
            assert suite.check(cycle, tagwatch) == []
        cycle = synthetic_cycle(3, t + 3, observations=[])
        names = {v.name for v in suite.check(cycle, tagwatch)}
        assert names == {"stale-mobile-tag"}

    def test_reading_the_tag_resets_the_clock(self, lab, supervisor):
        suite = InvariantSuite(
            lab.scene, lab.mobile_epc_values, staleness_healthy_cycles=2
        )
        tagwatch = supervisor.tagwatch
        mobile = [lab.epcs[i] for i in lab.mobile_indices]
        t = 100.0
        for i in range(8):
            seen = (
                [observation_of(epc, t + i) for epc in mobile]
                if i % 2 == 0
                else []
            )
            cycle = synthetic_cycle(i, t + i, observations=seen)
            assert suite.check(cycle, tagwatch) == []

    def test_unhealthy_cycles_do_not_count_against_staleness(
        self, lab, supervisor
    ):
        suite = InvariantSuite(
            lab.scene,
            lab.mobile_epc_values,
            staleness_healthy_cycles=2,
            max_consecutive_unhealthy=100,
        )
        tagwatch = supervisor.tagwatch
        for i in range(10):  # unread for 10 cycles, but all faulted
            cycle = synthetic_cycle(i, 100.0 + i, [], healthy=False)
            assert suite.check(cycle, tagwatch) == []

    def test_absent_tag_is_excused(self, lab, supervisor):
        mobile_values = sorted(lab.mobile_epc_values)
        tag = lab.scene.tags[lab.mobile_indices[0]]
        tag.blocked_intervals = ((90.0, 10_000.0),)  # shadowed for the run
        suite = InvariantSuite(
            lab.scene, set(mobile_values), staleness_healthy_cycles=1
        )
        tagwatch = supervisor.tagwatch
        other = [
            lab.epcs[i]
            for i in lab.mobile_indices
            if lab.epcs[i].value != tag.epc.value
        ]
        for i in range(4):
            seen = [observation_of(epc, 100.0 + i) for epc in other]
            cycle = synthetic_cycle(i, 100.0 + i, seen)
            assert suite.check(cycle, tagwatch) == []


class TestConvergence:
    def test_divergent_recovery_is_flagged(self, lab, supervisor):
        suite = InvariantSuite(
            lab.scene,
            lab.mobile_epc_values,
            max_consecutive_unhealthy=4,
        )
        tagwatch = supervisor.tagwatch
        violations = []
        for i in range(6):
            cycle = synthetic_cycle(i, 100.0 + i, [], healthy=False)
            violations += suite.check(cycle, tagwatch)
        names = [v.name for v in violations]
        assert "recovery-divergence" in names
        assert not suite.ok

    def test_healthy_cycle_resets_the_unhealthy_run(self, lab, supervisor):
        suite = InvariantSuite(
            lab.scene,
            lab.mobile_epc_values,
            staleness_healthy_cycles=50,
            max_consecutive_unhealthy=3,
        )
        tagwatch = supervisor.tagwatch
        for i in range(12):  # never 4 unhealthy in a row
            healthy = i % 3 == 0
            cycle = synthetic_cycle(i, 100.0 + i, [], healthy=healthy)
            assert suite.check(cycle, tagwatch) == []


class TestValidation:
    def test_unknown_mobile_epc_rejected(self, lab):
        with pytest.raises(ValueError, match="not in scene"):
            InvariantSuite(lab.scene, {0x123456})

    def test_bounds_must_be_positive(self, lab):
        with pytest.raises(ValueError):
            InvariantSuite(
                lab.scene, lab.mobile_epc_values, staleness_healthy_cycles=0
            )
        with pytest.raises(ValueError):
            InvariantSuite(
                lab.scene,
                lab.mobile_epc_values,
                max_consecutive_unhealthy=0,
            )
