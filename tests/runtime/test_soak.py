"""Chaos soak acceptance: thousands of cycles, dozens of faults, zero
invariant violations.

The full-scale run here is the PR's headline guarantee, so it runs in
tier-1 despite costing ~a minute of wall time.  Everything is simulated
time, so the run is deterministic for a given seed.
"""

import json

import pytest

from repro.experiments import soak


@pytest.fixture(scope="module")
def full_report(tmp_path_factory):
    checkpoint_dir = tmp_path_factory.mktemp("soak-full")
    config = soak.SoakConfig(
        n_cycles=2000, seed=0, checkpoint_dir=checkpoint_dir
    )
    return soak.run(config)


class TestAcceptance:
    def test_survives_two_thousand_cycles(self, full_report):
        assert full_report.n_cycles == 2000
        assert full_report.violations == []
        assert full_report.ok

    def test_enough_chaos_was_actually_injected(self, full_report):
        assert full_report.n_crashes_fired >= 20
        assert full_report.n_kills >= 1
        assert full_report.n_corruptions >= 1

    def test_recovery_machinery_was_exercised(self, full_report):
        assert full_report.n_restarts >= full_report.n_kills
        assert full_report.n_warm_restarts >= 1
        assert full_report.n_checkpoints >= 50
        assert full_report.n_unhealthy > 0  # chaos actually hurt
        assert full_report.n_healthy > full_report.n_unhealthy * 10

    def test_report_serializes(self, full_report, tmp_path):
        document = full_report.to_dict()
        assert document["ok"] is True
        assert document["config"]["n_cycles"] == 2000
        path = tmp_path / "report.json"
        path.write_text(json.dumps(document))
        assert json.loads(path.read_text())["n_cycles"] == 2000


class TestDeterminism:
    def test_same_seed_same_report(self, tmp_path):
        def run_once(subdir):
            config = soak.SoakConfig(
                n_cycles=60,
                seed=9,
                crash_every=25,
                kill_every=40,
                corrupt_every=50,
                checkpoint_dir=tmp_path / subdir,
            )
            document = soak.run(config).to_dict()
            document.pop("wall_s")
            document["config"].pop("checkpoint_dir", None)
            return document

        assert run_once("a") == run_once("b")


class TestReporting:
    def test_format_report_mentions_the_verdict(self, tmp_path):
        config = soak.SoakConfig(
            n_cycles=30,
            seed=2,
            crash_every=0,
            kill_every=0,
            corrupt_every=0,
            jam_every=0,
            blackout_every=0,
            churn_tags=0,
            checkpoint_dir=tmp_path,
        )
        report = soak.run(config)
        text = soak.format_report(report)
        assert "SURVIVED" in text
        assert "cycles" in text

    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError):
            soak.SoakConfig(n_cycles=0)
        with pytest.raises(ValueError):
            soak.SoakConfig(crash_every=-1)
        with pytest.raises(ValueError):
            soak.SoakConfig(crash_downtime_s=(5.0, 1.0))


class TestCLI:
    def test_soak_command_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main(
            [
                "soak",
                "--cycles", "40",
                "--seed", "4",
                "--crash-every", "15",
                "--kill-every", "0",
                "--corrupt-every", "0",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--out", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["ok"] and report["n_cycles"] == 40
