"""Tests for the supervised runtime (checkpointing, watchdog, soak)."""
