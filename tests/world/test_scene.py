"""Tests for the scene container."""

import numpy as np
import pytest

from repro.gen2.epc import random_epc_population
from repro.radio.constants import china_920_926, single_channel
from repro.world.motion import LinearPath, Stationary
from repro.world.objects import AmbientObject, office_worker, walking_person
from repro.world.scene import Antenna, Scene, TagInstance, stationary_grid


def simple_scene(n=3, seed=0, plan=None):
    epcs = random_epc_population(n, rng=1)
    tags = [
        TagInstance(epc=e, trajectory=Stationary((i * 0.5, 1.0, 0.8)))
        for i, e in enumerate(epcs)
    ]
    return (
        Scene(
            [Antenna((0, 0, 1.5)), Antenna((5, 0, 1.5))],
            tags,
            channel_plan=plan or single_channel(),
            seed=seed,
        ),
        epcs,
    )


class TestSceneBasics:
    def test_requires_antenna(self):
        with pytest.raises(ValueError):
            Scene([], [])

    def test_duplicate_epcs_rejected(self):
        epcs = random_epc_population(1, rng=1)
        tags = [
            TagInstance(epc=epcs[0], trajectory=Stationary((0, 1, 0))),
            TagInstance(epc=epcs[0], trajectory=Stationary((1, 1, 0))),
        ]
        with pytest.raises(ValueError):
            Scene([Antenna((0, 0, 1))], tags)

    def test_index_of(self):
        scene, epcs = simple_scene()
        assert scene.index_of(epcs[1]) == 1

    def test_add_and_remove_tag(self):
        scene, _ = simple_scene()
        new_epc = random_epc_population(4, rng=2)[3]
        index = scene.add_tag(
            TagInstance(epc=new_epc, trajectory=Stationary((0, 2, 0)))
        )
        assert scene.index_of(new_epc) == index
        scene.remove_tag(index)
        with pytest.raises(KeyError):
            scene.index_of(new_epc)


class TestRange:
    def test_all_in_range_by_default(self):
        scene, _ = simple_scene()
        assert scene.tags_in_range(0, 0.0) == [0, 1, 2]

    def test_out_of_range_excluded(self):
        epcs = random_epc_population(2, rng=1)
        tags = [
            TagInstance(epc=epcs[0], trajectory=Stationary((1, 0, 0))),
            TagInstance(epc=epcs[1], trajectory=Stationary((100, 0, 0))),
        ]
        scene = Scene([Antenna((0, 0, 0), range_m=5.0)], tags)
        assert scene.tags_in_range(0, 0.0) == [0]

    def test_absent_tag_excluded(self):
        epcs = random_epc_population(1, rng=1)
        tags = [
            TagInstance(
                epc=epcs[0],
                trajectory=Stationary((1, 0, 0)),
                enter_time=10.0,
            )
        ]
        scene = Scene([Antenna((0, 0, 0))], tags)
        assert scene.tags_in_range(0, 0.0) == []
        assert scene.tags_in_range(0, 11.0) == [0]


class TestObserve:
    def test_observation_fields(self):
        scene, epcs = simple_scene()
        obs = scene.observe(0, 1, 0, 0.5)
        assert obs.epc == epcs[0]
        assert obs.antenna_index == 1
        assert obs.time_s == 0.5
        assert 0 <= obs.phase_rad < 2 * np.pi
        assert obs.rss_dbm < 0

    def test_absent_tag_raises(self):
        epcs = random_epc_population(1, rng=1)
        tags = [
            TagInstance(
                epc=epcs[0], trajectory=Stationary((1, 0, 0)), exit_time=5.0
            )
        ]
        scene = Scene([Antenna((0, 0, 0))], tags)
        with pytest.raises(ValueError):
            scene.observe(0, 0, 0, 6.0)

    def test_lo_offsets_differ_by_channel(self):
        scene, _ = simple_scene(plan=china_920_926())
        assert scene.lo_offset(0, 0) != scene.lo_offset(0, 1)

    def test_lo_offsets_reproducible(self):
        a, _ = simple_scene(seed=5)
        b, _ = simple_scene(seed=5)
        assert a.lo_offset(0, 0) == b.lo_offset(0, 0)


class TestMovingTags:
    def test_ground_truth(self):
        epcs = random_epc_population(2, rng=1)
        tags = [
            TagInstance(epc=epcs[0], trajectory=Stationary((1, 0, 0))),
            TagInstance(
                epc=epcs[1], trajectory=LinearPath((2, 0, 0), (0.5, 0, 0))
            ),
        ]
        scene = Scene([Antenna((0, 0, 0))], tags)
        assert scene.moving_tag_indices(1.0) == [1]


class TestHelpers:
    def test_stationary_grid(self):
        epcs = random_epc_population(6, rng=1)
        tags = stationary_grid(6, epcs, columns=3)
        assert len(tags) == 6
        assert not tags[0].is_moving_at(0.0)

    def test_grid_needs_enough_epcs(self):
        with pytest.raises(ValueError):
            stationary_grid(5, random_epc_population(2, rng=1))

    def test_ambient_objects(self):
        worker = office_worker((-1, -1), (1, 1), 10.0, rng=1)
        person = walking_person((-1, -1), (1, 1), 10.0, rng=1)
        assert worker.reflection_coefficient == person.reflection_coefficient
        with pytest.raises(ValueError):
            AmbientObject(Stationary((0, 0, 0)), reflection_coefficient=2.0)
