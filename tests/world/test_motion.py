"""Tests for trajectories."""

import numpy as np
import pytest

from repro.world.motion import (
    CircularPath,
    ConveyorPath,
    LinearPath,
    RandomWaypointWalk,
    Stationary,
    StepDisplacement,
    TurntablePath,
    WaypointPath,
)


class TestStationary:
    def test_never_moves(self):
        s = Stationary((1, 2, 3))
        assert np.allclose(s.position(0.0), s.position(100.0))
        assert not s.is_moving_at(5.0)

    def test_position_is_copy(self):
        s = Stationary((1, 2, 3))
        s.position(0.0)[0] = 99.0
        assert s.position(0.0)[0] == 1.0


class TestLinearPath:
    def test_velocity_integration(self):
        path = LinearPath((0, 0, 0), (1, 0, 0))
        assert path.position(2.0)[0] == pytest.approx(2.0)

    def test_speed(self):
        path = LinearPath((0, 0, 0), (3, 4, 0))
        assert path.instantaneous_speed(1.0) == pytest.approx(5.0, rel=1e-3)


class TestCircularPath:
    def test_stays_on_circle(self):
        path = CircularPath((0, 0, 0.8), radius=0.2, speed=0.7)
        for t in np.linspace(0, 5, 20):
            p = path.position(t)
            assert np.hypot(p[0], p[1]) == pytest.approx(0.2)

    def test_constant_speed(self):
        path = CircularPath((0, 0, 0.8), radius=0.2, speed=0.7)
        assert path.instantaneous_speed(1.0) == pytest.approx(0.7, rel=1e-2)

    def test_start_time_hold(self):
        path = CircularPath((0, 0, 0.8), 0.2, 0.7, start_time=2.0)
        assert np.allclose(path.position(0.0), path.position(1.9))
        assert not path.is_moving_at(1.0)
        assert path.is_moving_at(3.0)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            CircularPath((0, 0, 0), radius=0.0, speed=1.0)


class TestTurntable:
    def test_period(self):
        path = TurntablePath((0, 0, 0.8), radius=0.25, period_s=2.0)
        assert np.allclose(path.position(0.0), path.position(2.0), atol=1e-9)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            TurntablePath((0, 0, 0), 0.25, period_s=0.0)


class TestConveyor:
    def test_before_and_after(self):
        path = ConveyorPath((0, 0, 0), (10, 0, 0), speed=1.0, enter_time=5.0)
        assert np.allclose(path.position(0.0), (0, 0, 0))
        assert np.allclose(path.position(100.0), (10, 0, 0))

    def test_midway(self):
        path = ConveyorPath((0, 0, 0), (10, 0, 0), speed=1.0, enter_time=0.0)
        assert path.position(5.0)[0] == pytest.approx(5.0)

    def test_moving_only_during_transit(self):
        path = ConveyorPath((0, 0, 0), (10, 0, 0), speed=1.0, enter_time=5.0)
        assert not path.is_moving_at(1.0)
        assert path.is_moving_at(10.0)
        assert not path.is_moving_at(20.0)

    def test_exit_time(self):
        path = ConveyorPath((0, 0, 0), (10, 0, 0), speed=2.0, enter_time=1.0)
        assert path.exit_time == pytest.approx(6.0)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            ConveyorPath((0, 0, 0), (1, 0, 0), speed=0.0)


class TestStepDisplacement:
    def test_jump_at_step_time(self):
        step = StepDisplacement((0, 0, 0), (0.05, 0, 0), step_time=1.0)
        assert step.position(0.5)[0] == 0.0
        assert step.position(1.5)[0] == pytest.approx(0.05)

    def test_random_direction_magnitude(self):
        step = StepDisplacement.random_direction((0, 0, 0), 0.03, 1.0, rng=4)
        moved = np.linalg.norm(step.after - step.before)
        assert moved == pytest.approx(0.03)

    def test_planar_by_default(self):
        step = StepDisplacement.random_direction((0, 0, 0), 0.03, 1.0, rng=4)
        assert step.after[2] == step.before[2]

    def test_moving_only_near_step(self):
        step = StepDisplacement((0, 0, 0), (0.05, 0, 0), step_time=1.0)
        assert step.is_moving_at(1.0)
        assert not step.is_moving_at(2.0)

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError):
            StepDisplacement.random_direction((0, 0, 0), -0.1, 1.0)


class TestWaypointPath:
    def test_interpolates(self):
        path = WaypointPath([(0.0, (0, 0, 0)), (2.0, (4, 0, 0))])
        assert path.position(1.0)[0] == pytest.approx(2.0)

    def test_clamps_outside(self):
        path = WaypointPath([(1.0, (1, 1, 0)), (2.0, (2, 2, 0))])
        assert np.allclose(path.position(0.0), (1, 1, 0))
        assert np.allclose(path.position(5.0), (2, 2, 0))

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValueError):
            WaypointPath([(1.0, (0, 0, 0)), (1.0, (1, 0, 0))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WaypointPath([])


class TestRandomWaypointWalk:
    def test_stays_in_region(self):
        walk = RandomWaypointWalk((-2, -2), (2, 2), duration_s=30.0, rng=7)
        for t in np.linspace(0, 30, 100):
            p = walk.position(t)
            assert -2.01 <= p[0] <= 2.01
            assert -2.01 <= p[1] <= 2.01

    def test_actually_moves(self):
        walk = RandomWaypointWalk((-2, -2), (2, 2), duration_s=30.0, rng=7)
        positions = [walk.position(t) for t in np.linspace(0, 30, 50)]
        spread = np.ptp([p[0] for p in positions])
        assert spread > 0.1

    def test_reproducible(self):
        a = RandomWaypointWalk((-2, -2), (2, 2), 10.0, rng=3)
        b = RandomWaypointWalk((-2, -2), (2, 2), 10.0, rng=3)
        assert np.allclose(a.position(5.0), b.position(5.0))

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            RandomWaypointWalk((-1, -1), (1, 1), 0.0)
