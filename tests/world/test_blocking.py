"""Tests for temporary tag blocking (Section 4.3 reading exceptions)."""

import pytest

from repro.gen2.epc import random_epc_population
from repro.radio.constants import single_channel
from repro.reader import SimReader
from repro.world.motion import Stationary
from repro.world.scene import Antenna, Scene, TagInstance


def blocked_tag_scene(intervals, seed=1):
    epcs = random_epc_population(2, rng=seed)
    tags = [
        TagInstance(
            epc=epcs[0],
            trajectory=Stationary((0.5, 1.0, 0.8)),
            blocked_intervals=intervals,
        ),
        TagInstance(epc=epcs[1], trajectory=Stationary((1.0, 1.0, 0.8))),
    ]
    scene = Scene(
        [Antenna((0, 0, 1.5))], tags, channel_plan=single_channel(), seed=seed
    )
    return scene, epcs


class TestBlockedIntervals:
    def test_validation(self):
        epcs = random_epc_population(1, rng=1)
        with pytest.raises(ValueError):
            TagInstance(
                epc=epcs[0],
                trajectory=Stationary((0, 1, 0)),
                blocked_intervals=((2.0, 1.0),),
            )

    def test_presence_respects_blocking(self):
        scene, _ = blocked_tag_scene(((1.0, 2.0),))
        tag = scene.tags[0]
        assert tag.is_present(0.5)
        assert not tag.is_present(1.5)
        assert tag.is_present(2.5)

    def test_blocked_tag_not_read(self):
        scene, epcs = blocked_tag_scene(((0.0, 5.0),))
        reader = SimReader(scene, seed=2)
        observations, _ = reader.run_duration(1.0)
        values = {obs.epc.value for obs in observations}
        assert epcs[0].value not in values
        assert epcs[1].value in values

    def test_tag_returns_after_blockage(self):
        scene, epcs = blocked_tag_scene(((0.0, 0.5),))
        reader = SimReader(scene, seed=2)
        observations, _ = reader.run_duration(1.5)
        late = [o for o in observations if o.time_s > 0.6]
        assert any(o.epc.value == epcs[0].value for o in late)

    def test_multiple_intervals(self):
        scene, _ = blocked_tag_scene(((0.0, 1.0), (2.0, 3.0)))
        tag = scene.tags[0]
        assert not tag.is_present(0.5)
        assert tag.is_present(1.5)
        assert not tag.is_present(2.5)
