"""Cross-module property-based tests (hypothesis).

These pin down invariants that unit tests only sample: Select semantics vs
bitmask coverage, table coverage vs mask matching, greedy-cover soundness,
inventory-engine bookkeeping, and cost-model fitting.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitmask import IndexedBitmaskTable
from repro.core.cost import CostModel
from repro.core.setcover import greedy_cover, naive_selection, select_bitmasks
from repro.gen2.aloha import IdealDFSA, QAdaptive
from repro.gen2.epc import EPC
from repro.gen2.inventory import InventoryEngine
from repro.gen2.select import BitMask, apply_selects, union_selects
from repro.gen2.timing import R420_PROFILE

# -- strategies -------------------------------------------------------------

epc_values = st.integers(min_value=0, max_value=2**16 - 1)


@st.composite
def populations(draw, min_size=2, max_size=10):
    values = draw(
        st.lists(
            epc_values, min_size=min_size, max_size=max_size, unique=True
        )
    )
    return [EPC(v, 16) for v in values]


@st.composite
def bitmasks(draw, epc_length=16):
    length = draw(st.integers(min_value=0, max_value=epc_length))
    pointer = draw(st.integers(min_value=0, max_value=epc_length - length))
    mask = draw(st.integers(min_value=0, max_value=(1 << length) - 1)) if length else 0
    return BitMask(mask, pointer, length)


# -- Select semantics ---------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(populations(), st.lists(bitmasks(), min_size=1, max_size=4))
def test_union_selects_equals_any_cover(population, masks):
    """apply_selects over union_selects == logical OR of mask coverage."""
    flags = apply_selects(union_selects(masks), population)
    for epc, flag in zip(population, flags):
        assert flag == any(mask.covers(epc) for mask in masks)


@settings(max_examples=60, deadline=None)
@given(populations(), bitmasks())
def test_single_select_matches_cover(population, mask):
    flags = apply_selects([mask.to_select()], population)
    assert flags == [mask.covers(epc) for epc in population]


# -- Indexed table -------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(populations(min_size=3, max_size=9), st.data())
def test_table_coverage_consistent(population, data):
    n_targets = data.draw(
        st.integers(min_value=1, max_value=min(4, len(population)))
    )
    targets = list(range(n_targets))
    table = IndexedBitmaskTable(population, max_mask_length=16)
    for row in table.candidate_rows(targets):
        expected = [row.bitmask.covers(epc) for epc in population]
        assert list(row.coverage) == expected


# -- Set cover ----------------------------------------------------------------

MODEL = CostModel(tau0_s=0.019, tau_bar_s=0.00018)


@settings(max_examples=40, deadline=None)
@given(populations(min_size=3, max_size=9), st.data())
def test_greedy_cover_sound_and_bounded(population, data):
    n_targets = data.draw(
        st.integers(min_value=1, max_value=min(4, len(population)))
    )
    targets = list(range(n_targets))
    table = IndexedBitmaskTable(population, max_mask_length=16)
    rows = table.candidate_rows(targets)
    selection = select_bitmasks(
        rows,
        targets,
        [population[i] for i in targets],
        len(population),
        MODEL,
        rng=0,
    )
    # Sound: every target covered by some chosen mask.
    for i in targets:
        assert any(m.covers(population[i]) for m in selection.bitmasks)
    # Bounded: never worse than naive.
    naive = naive_selection([population[i] for i in targets], MODEL)
    assert selection.total_cost_s <= naive.total_cost_s + 1e-12


# -- Inventory engine -----------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.booleans(),
)
def test_inventory_round_invariants(n_tags, seed, with_replacement):
    engine = InventoryEngine(
        R420_PROFILE,
        lambda: QAdaptive(initial_q=4),
        rng=seed,
        with_replacement=with_replacement,
    )
    log = engine.run_round(range(n_tags))
    # Every participant reported exactly once.
    assert sorted(r.tag_index for r in log.reads) == list(range(n_tags))
    # Read times strictly increase and stay inside the round.
    times = [r.time_s for r in log.reads]
    assert all(b > a for a, b in zip(times, times[1:]))
    assert all(log.start_time_s < t <= log.end_time_s for t in times)
    # Time accounting: duration at least startup plus one slot per single.
    assert log.duration_s >= R420_PROFILE.startup_cost
    assert log.n_single >= n_tags


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=25), st.integers(min_value=0, max_value=10**6))
def test_dfsa_slot_bookkeeping(n_tags, seed):
    engine = InventoryEngine(
        R420_PROFILE, IdealDFSA, rng=seed, with_replacement=False
    )
    log = engine.run_round(range(n_tags))
    assert log.n_slots == log.n_empty + log.n_single + log.n_collision
    assert log.n_single == n_tags  # no duplicates in S1 mode


# -- Cost model ------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=1e-3, max_value=0.1),
    st.floats(min_value=1e-5, max_value=1e-3),
)
def test_cost_fit_roundtrip(tau0, tau_bar):
    truth = CostModel(tau0_s=tau0, tau_bar_s=tau_bar)
    counts = [1, 2, 5, 10, 20, 40]
    durations = [truth.inventory_cost(n) for n in counts]
    fitted = CostModel.fit(counts, durations)
    assert fitted.tau0_s == pytest.approx(tau0, rel=1e-5, abs=1e-9)
    assert fitted.tau_bar_s == pytest.approx(tau_bar, rel=1e-5)
