"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_registered(self):
        for fig in ("fig1", "fig2", "fig3", "fig8", "fig12", "fig13",
                    "fig14", "fig15", "fig16", "fig17", "fig18"):
            assert fig in FIGURES


class TestCommands:
    def test_figures_lists(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out

    def test_unknown_figure_fails(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_predict(self, capsys):
        assert main(["predict", "--tags", "80"]) == 0
        out = capsys.readouterr().out
        assert "break-even" in out

    def test_rospec(self, capsys):
        assert main(["rospec", "--targets", "2", "--population", "20"]) == 0
        out = capsys.readouterr().out
        assert "<ROSpec" in out
        assert "C1G2TagInventoryMask" in out

    def test_figure_smoke_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        assert "TrackPoint" in capsys.readouterr().out

    def test_demo_small(self, capsys):
        assert (
            main(
                [
                    "demo", "--tags", "8", "--mobile", "1",
                    "--cycles", "2", "--warmup", "8", "--phase2", "0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Tagwatch demo" in out
