"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_registered(self):
        for fig in ("fig1", "fig2", "fig3", "fig8", "fig12", "fig13",
                    "fig14", "fig15", "fig16", "fig17", "fig18"):
            assert fig in FIGURES


class TestCommands:
    def test_figures_lists(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out

    def test_unknown_figure_fails(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_predict(self, capsys):
        assert main(["predict", "--tags", "80"]) == 0
        out = capsys.readouterr().out
        assert "break-even" in out

    def test_rospec(self, capsys):
        assert main(["rospec", "--targets", "2", "--population", "20"]) == 0
        out = capsys.readouterr().out
        assert "<ROSpec" in out
        assert "C1G2TagInventoryMask" in out

    def test_figure_smoke_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        assert "TrackPoint" in capsys.readouterr().out

    def test_demo_small(self, capsys):
        assert (
            main(
                [
                    "demo", "--tags", "8", "--mobile", "1",
                    "--cycles", "2", "--warmup", "8", "--phase2", "0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Tagwatch demo" in out


class TestObservabilityWiring:
    def test_figure_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        path = tmp_path / "trace.json"
        assert main(["figure", "fig2", "--trace-out", str(path)]) == 0
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []
        names = {e["name"] for e in document["traceEvents"]}
        assert {"round", "frame", "inventory_round"} <= names

    def test_figure_trace_out_jsonl_and_determinism(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            assert (
                main(
                    ["figure", "fig2",
                     "--trace-out", str(path), "--trace-format", "jsonl"]
                )
                == 0
            )
        assert a.read_bytes() == b.read_bytes()

    def test_demo_metrics_out_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert (
            main(
                ["demo", "--tags", "8", "--mobile", "1", "--cycles", "2",
                 "--warmup", "6", "--phase2", "0.5",
                 "--metrics-out", str(path)]
            )
            == 0
        )
        metrics = json.loads(path.read_text())
        assert metrics["tagwatch.cycles"]["value"] == 2
        assert metrics["tagwatch.cycle_s"]["count"] == 2

    def test_demo_metrics_out_prometheus(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        assert (
            main(
                ["demo", "--tags", "8", "--mobile", "1", "--cycles", "1",
                 "--warmup", "6", "--phase2", "0.5",
                 "--metrics-out", str(path)]
            )
            == 0
        )
        text = path.read_text()
        assert "# TYPE tagwatch_cycles_total counter" in text
        assert "tagwatch_cycles_total 1" in text

    def test_bench_command(self, tmp_path, capsys):
        import json

        assert (
            main(
                ["bench", "--name", "fig02", "--scale", "smoke",
                 "--out-dir", str(tmp_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fig02/smoke" in out
        data = json.loads((tmp_path / "BENCH_fig02.json").read_text())
        assert data["counts"]["rounds"] > 0
        assert not (tmp_path / "BENCH_fig18.json").exists()

    def test_bench_no_write(self, tmp_path, capsys):
        assert (
            main(
                ["bench", "--name", "fig02", "--no-write",
                 "--out-dir", str(tmp_path)]
            )
            == 0
        )
        assert list(tmp_path.iterdir()) == []


class TestHealthCommand:
    def test_fault_free_report_is_ok(self, tmp_path, capsys):
        import json

        out = tmp_path / "health.json"
        assert (
            main(["health", "--cycles", "15", "--out", str(out)]) == 0
        )
        report = json.loads(out.read_text())
        assert report["status"] == "ok"
        assert report["n_alerts"] == 0
        assert report["slo"]["irr_floor"]["observations"] == 15

    def test_blackout_cuts_exactly_one_valid_bundle(self, tmp_path, capsys):
        from repro.obs.health import list_bundles, validate_bundle

        bundles = tmp_path / "bundles"
        window = ["--blackout", "0:15:45", "--blackout", "1:15:45",
                  "--blackout", "2:15:45", "--blackout", "3:15:45"]
        assert (
            main(["health", "--cycles", "40", "--bundle-dir", str(bundles)]
                 + window)
            == 0
        )
        cut = list_bundles(bundles)
        assert len(cut) == 1  # one unhealthy episode -> one bundle
        assert validate_bundle(cut[0]) == []
        out = capsys.readouterr().out
        assert '"status": "alerting"' in out
        assert "1 incident bundle(s)" in out

    def test_watch_streams_status_lines(self, capsys):
        assert main(["health", "--cycles", "3", "--watch"]) == 0
        out = capsys.readouterr().out
        assert out.count("status=ok") >= 3


class TestEngineFlag:
    def test_flag_overrides_env_and_restores_it(self, monkeypatch):
        import os

        from repro import cli

        monkeypatch.setenv("REPRO_INVENTORY_ENGINE", "reference")
        seen = {}

        def spy(args):
            seen["engine"] = os.environ.get("REPRO_INVENTORY_ENGINE")
            return 0

        monkeypatch.setitem(cli.COMMANDS, "figures", spy)
        assert cli.main(["figures", "--engine", "fast"]) == 0
        assert seen["engine"] == "fast"
        # The previous value is back once the command returns.
        assert os.environ["REPRO_INVENTORY_ENGINE"] == "reference"
        # Without the flag, the env var (or the default) still rules.
        assert cli.main(["figures"]) == 0
        assert seen["engine"] == "reference"

    def test_unset_env_stays_unset_after_the_flag(self, monkeypatch):
        import os

        from repro import cli

        monkeypatch.delenv("REPRO_INVENTORY_ENGINE", raising=False)
        monkeypatch.setitem(cli.COMMANDS, "figures", lambda args: 0)
        assert cli.main(["figures", "--engine", "calendar"]) == 0
        assert "REPRO_INVENTORY_ENGINE" not in os.environ

    def test_engine_flag_reaches_a_real_run(self, capsys):
        # The reference engine is a drop-in: same results, slower path.
        assert main(["figure", "fig3", "--engine", "reference"]) == 0
        assert "TrackPoint" in capsys.readouterr().out

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--engine", "warp"])


class TestSiteChaosCommand:
    ARGS = [
        "site", "--chaos", "--readers", "3", "--tags", "24",
        "--epochs", "12", "--outages", "2", "--mobile", "2",
        "--seed", "11",
    ]

    def test_chaos_run_converges(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "rejoins" in out
        assert "ok" in out

    def test_chaos_bundles_and_differential(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundles"
        out_file = tmp_path / "chaos.json"
        assert (
            main(
                self.ARGS
                + [
                    "--workers", "4", "--check-differential",
                    "--bundle-dir", str(bundle_dir),
                    "--out", str(out_file),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "byte-identical" in out
        assert "incident bundle(s)" in out
        bundles = list(bundle_dir.iterdir())
        assert bundles and all(b.is_dir() for b in bundles)
        assert out_file.read_bytes().startswith(b"{")
