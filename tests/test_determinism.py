"""Whole-experiment determinism: same seed, same numbers.

A reproduction is only as good as its reproducibility; these tests re-run
representative drivers twice and demand bit-identical results.
"""

import numpy as np

from repro.experiments import fig02_irr, fig15_feasibility, fig17_cost
from repro.experiments.harness import build_lab


class TestDriverDeterminism:
    def test_fig02(self):
        kwargs = dict(tag_counts=(1, 5, 10), initial_qs=(4,), repeats=4, seed=3)
        a = fig02_irr.run(**kwargs)
        b = fig02_irr.run(**kwargs)
        assert a.curves[0].irr_hz == b.curves[0].irr_hz
        assert a.fitted.tau0_s == b.fitted.tau0_s

    def test_fig15(self):
        kwargs = dict(n_targets=2, duration_s=3.0, seed=19)
        a = fig15_feasibility.run(**kwargs)
        b = fig15_feasibility.run(**kwargs)
        for scheme in ("read-all", "tagwatch", "naive"):
            assert (
                a.schemes[scheme].target_irr_hz
                == b.schemes[scheme].target_irr_hz
            )

    def test_fig17_simulated_side(self):
        """Wall-clock overheads differ run to run; everything in simulated
        time must not."""
        kwargs = dict(
            n_tags=20, n_mobile=1, n_cycles=8, warmup_cycles=4,
            phase2_duration_s=0.5, seed=23,
        )
        a = fig17_cost.run(**kwargs)
        b = fig17_cost.run(**kwargs)
        assert a.cycle_duration_s == b.cycle_duration_s


class TestEndToEndDeterminism:
    def test_tagwatch_run_bitwise_stable(self):
        def one_run():
            setup = build_lab(n_tags=15, n_mobile=1, seed=41, partition=True)
            tagwatch = setup.tagwatch()
            tagwatch.warm_up(10.0)
            results = tagwatch.run(2)
            return [
                (r.phase1_start_s, r.phase2_end_s,
                 tuple(sorted(r.target_epc_values)))
                for r in results
            ]

        assert one_run() == one_run()
