"""Tests for immobility-state checkpointing."""

import numpy as np
import pytest

from repro.core.motion import MotionAssessor
from repro.core.persistence import (
    assessor_state,
    load_assessor,
    restore_assessor,
    save_assessor,
)
from repro.experiments.harness import build_lab


@pytest.fixture(scope="module")
def trained():
    setup = build_lab(n_tags=8, n_mobile=1, seed=111, n_antennas=2)
    assessor = MotionAssessor()
    observations, _ = setup.reader.run_duration(25.0)
    assessor.observe_all(observations)
    assessor.assess()
    return setup, assessor


class TestRoundTrip:
    def test_state_round_trip(self, trained):
        _, assessor = trained
        restored = restore_assessor(assessor_state(assessor))
        assert restored.known_epc_values() == assessor.known_epc_values()
        assert restored.shard_count() == assessor.shard_count()

    def test_file_round_trip(self, trained, tmp_path):
        _, assessor = trained
        path = tmp_path / "state.json"
        save_assessor(path, assessor)
        restored = load_assessor(path)
        assert restored.shard_count() == assessor.shard_count()

    def test_mode_contents_preserved(self, trained):
        _, assessor = trained
        restored = restore_assessor(assessor_state(assessor))
        key = next(iter(assessor._stacks))
        original = assessor._stacks[key].sorted_modes()[0]
        copy = restored._stacks[key].sorted_modes()[0]
        assert copy.mean == original.mean
        assert copy.std == original.std
        assert copy.weight == original.weight
        assert copy.best_run == original.best_run

    def test_version_check(self, trained):
        _, assessor = trained
        state = assessor_state(assessor)
        state["version"] = 99
        with pytest.raises(ValueError):
            restore_assessor(state)


class TestWarmRestart:
    def test_restored_assessor_skips_relearning(self, trained):
        """A restored assessor classifies stationary tags immediately; a
        fresh one flags everything as moving."""
        setup, assessor = trained
        restored = restore_assessor(assessor_state(assessor))
        fresh = MotionAssessor()
        observations, _ = setup.reader.run_duration(1.5)
        for candidate in (restored, fresh):
            candidate.observe_all(observations)
        static_values = {
            e.value for e in setup.epcs[1:]
        }
        restored_moving = {
            epc
            for epc, verdict in restored.assess().items()
            if verdict.moving and epc in static_values
        }
        fresh_moving = {
            epc
            for epc, verdict in fresh.assess().items()
            if verdict.moving and epc in static_values
        }
        # Warm: only vote noise (the paper's ~10% per-reading FPR
        # over an 'any' window), far from flagging everything.
        assert len(restored_moving) <= len(static_values) // 2
        assert len(fresh_moving) == len(static_values)  # cold: everything
