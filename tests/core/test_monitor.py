"""Tests for the Tagwatch runtime monitor."""

import pytest

from repro.core import TagwatchConfig
from repro.core.monitor import TagwatchMonitor
from repro.experiments.harness import build_lab


@pytest.fixture(scope="module")
def monitored():
    setup = build_lab(n_tags=12, n_mobile=1, seed=67, partition=True)
    tagwatch = setup.tagwatch(TagwatchConfig(phase2_duration_s=0.6))
    monitor = TagwatchMonitor(window=10)
    monitor.attach(tagwatch)
    tagwatch.warm_up(14.0)
    tagwatch.run(5)
    return setup, tagwatch, monitor


class TestRecording:
    def test_window_bounds(self):
        monitor = TagwatchMonitor(window=3)
        with pytest.raises(ValueError):
            TagwatchMonitor(window=0)
        with pytest.raises(ValueError):
            monitor.snapshot()

    def test_attach_records_cycles(self, monitored):
        _, _, monitor = monitored
        assert monitor.total_cycles == 5

    def test_snapshot_fields(self, monitored):
        setup, _, monitor = monitored
        snap = monitor.snapshot()
        assert snap.n_cycles == 5
        assert 0.0 <= snap.fallback_fraction <= 1.0
        assert snap.mean_targets >= 1.0
        assert snap.mean_cycle_duration_s > 0.6
        assert snap.p90_overhead_ms >= snap.p50_overhead_ms

    def test_low_churn_in_steady_state(self, monitored):
        _, _, monitor = monitored
        assert monitor.snapshot().target_churn < 2.0

    def test_irr_by_tag(self, monitored):
        setup, _, monitor = monitored
        irr = monitor.irr_by_tag()
        mobile = next(iter(setup.mobile_epc_values))
        statics = [
            v for k, v in irr.items() if k not in setup.mobile_epc_values
        ]
        assert irr[mobile] > 2 * max(statics)

    def test_wrapped_run_cycle_returns_result(self, monitored):
        _, tagwatch, monitor = monitored
        before = monitor.total_cycles
        result = tagwatch.run_cycle()
        assert result.phase1_observations
        assert monitor.total_cycles == before + 1
