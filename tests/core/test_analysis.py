"""Tests for the closed-form performance analysis."""

import pytest

from repro.core.analysis import (
    CyclePrediction,
    breakeven_percent,
    predict_cycle,
    predicted_gain,
)
from repro.core.cost import PAPER_R420


class TestPredictCycle:
    def test_fields_consistent(self):
        pred = predict_cycle(PAPER_R420, 100, 5, phase2_duration_s=5.0)
        assert pred.cycle_duration_s == pytest.approx(
            pred.phase1_duration_s + 5.0
        )
        assert pred.sweep_cost_s == pytest.approx(
            5 * PAPER_R420.inventory_cost(1)
        )

    def test_no_targets(self):
        pred = predict_cycle(PAPER_R420, 50, 0, phase2_duration_s=5.0)
        assert pred.target_irr_hz < PAPER_R420.irr(50)

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_cycle(PAPER_R420, 5, 6, 5.0)
        with pytest.raises(ValueError):
            predict_cycle(PAPER_R420, 5, 1, 0.0)

    def test_custom_sweep_cost(self):
        cheap = predict_cycle(PAPER_R420, 100, 5, 5.0, sweep_cost_s=0.02)
        naive = predict_cycle(PAPER_R420, 100, 5, 5.0)
        assert cheap.gain > naive.gain


class TestPredictedGain:
    def test_matches_paper_naive_medians(self):
        """The closed form with the paper's own constants lands on the
        paper's measured naive gains: ~2.6x at 5%, ~1.5x at 10%, ~0.8x at
        20% (Fig 18)."""
        assert predicted_gain(PAPER_R420, 100, 5.0) == pytest.approx(2.6, abs=0.4)
        assert predicted_gain(PAPER_R420, 100, 10.0) == pytest.approx(1.5, abs=0.4)
        assert predicted_gain(PAPER_R420, 100, 20.0) == pytest.approx(0.8, abs=0.25)

    def test_monotone_decreasing_in_percent(self):
        gains = [
            predicted_gain(PAPER_R420, 100, pct) for pct in (2, 5, 10, 20, 40)
        ]
        assert all(b < a for a, b in zip(gains, gains[1:]))

    def test_percent_validation(self):
        with pytest.raises(ValueError):
            predicted_gain(PAPER_R420, 100, 0.0)


class TestBreakeven:
    def test_paper_twenty_percent_rule(self):
        """Section 3's 'switch back beyond ~20%' corresponds to break-even
        percentages of roughly 10-20% across deployment sizes."""
        for n in (50, 100, 200, 400):
            breakeven = breakeven_percent(PAPER_R420, n)
            assert 8.0 <= breakeven <= 20.0

    def test_breakeven_grows_with_population(self):
        assert breakeven_percent(PAPER_R420, 400) > breakeven_percent(
            PAPER_R420, 50
        )
