"""Tests for the cost-weighted greedy set cover (Eqns 12-13)."""

import numpy as np
import pytest

from repro.core.bitmask import CandidateRow, IndexedBitmaskTable
from repro.core.cost import PAPER_R420, CostModel
from repro.core.setcover import (
    exact_cover,
    greedy_cover,
    naive_selection,
    select_bitmasks,
)
from repro.gen2.epc import EPC, random_epc_population
from repro.gen2.select import BitMask

# Fig 9's population: three targets, one non-target.
POPULATION = [
    EPC.from_bits("001110"),
    EPC.from_bits("010010"),
    EPC.from_bits("101100"),
    EPC.from_bits("110110"),
]
TARGETS = [0, 1, 2]


def candidates_for(population=POPULATION, targets=TARGETS, max_len=6):
    table = IndexedBitmaskTable(population, max_mask_length=max_len)
    return table.candidate_rows(targets)


class TestNaive:
    def test_one_mask_per_target(self):
        selection = naive_selection(
            [POPULATION[i] for i in TARGETS], PAPER_R420
        )
        assert selection.n_rounds == 3
        assert selection.n_collateral == 0
        assert selection.total_cost_s == pytest.approx(
            3 * PAPER_R420.inventory_cost(1)
        )


class TestGreedy:
    def test_covers_all_targets(self):
        selection = greedy_cover(
            candidates_for(), TARGETS, len(POPULATION), PAPER_R420, rng=1
        )
        covered = set()
        for mask in selection.bitmasks:
            covered |= {
                i for i, epc in enumerate(POPULATION) if mask.covers(epc)
            }
        assert set(TARGETS) <= covered

    def test_beats_naive_on_fig9(self):
        """Grouping targets under shared windows must undercut per-EPC
        masks whenever such windows exist."""
        greedy = greedy_cover(
            candidates_for(), TARGETS, len(POPULATION), PAPER_R420, rng=1
        )
        naive = naive_selection([POPULATION[i] for i in TARGETS], PAPER_R420)
        assert greedy.total_cost_s < naive.total_cost_s

    def test_empty_targets(self):
        selection = greedy_cover(
            candidates_for(), [], len(POPULATION), PAPER_R420
        )
        assert selection.bitmasks == []
        assert selection.total_cost_s == 0.0

    def test_uncoverable_raises(self):
        rows = [
            CandidateRow(
                BitMask.full_epc(POPULATION[0]),
                np.array([True, False, False, False]),
            )
        ]
        with pytest.raises(ValueError):
            greedy_cover(rows, [0, 1], len(POPULATION), PAPER_R420)

    def test_matches_exact_on_small_instances(self):
        """The greedy must stay close to optimal on random small instances
        (set cover greedy is H_n-approximate; these instances are tiny)."""
        for seed in range(5):
            epcs = random_epc_population(8, rng=seed, length=12)
            targets = [0, 1, 2]
            rows = IndexedBitmaskTable(epcs, max_mask_length=12).candidate_rows(
                targets
            )
            rows = rows[:16]
            greedy = greedy_cover(rows, targets, len(epcs), PAPER_R420, rng=1)
            exact = exact_cover(rows, targets, len(epcs), PAPER_R420)
            assert greedy.total_cost_s <= exact.total_cost_s * 2.0 + 1e-9


class TestSelectBitmasks:
    def test_never_worse_than_naive(self):
        for seed in range(4):
            epcs = random_epc_population(20, rng=seed)
            targets = [0, 1, 2, 3]
            rows = IndexedBitmaskTable(epcs).candidate_rows(targets)
            selection = select_bitmasks(
                rows,
                targets,
                [epcs[i] for i in targets],
                len(epcs),
                PAPER_R420,
                rng=seed,
            )
            naive = naive_selection([epcs[i] for i in targets], PAPER_R420)
            assert selection.total_cost_s <= naive.total_cost_s + 1e-12


class TestExact:
    def test_beats_fig9b_selection(self):
        """Fig 9(b) shows two clean 2-bit masks; with the paper's cost model
        the start-up cost dominates, so one 1-bit mask covering all three
        targets plus one collateral tag is cheaper still — the exact solver
        must find it (the paper's own point: "cost-effective selection may
        collaterally involve non-target tags")."""
        rows = candidates_for()
        exact = exact_cover(rows, TARGETS, len(POPULATION), PAPER_R420)
        fig9b_cost = 2 * PAPER_R420.inventory_cost(2)
        assert exact.total_cost_s <= fig9b_cost
        assert exact.n_rounds == 1
        assert exact.n_collateral == 1

    def test_rejects_large_instances(self):
        rows = candidates_for() * 10
        with pytest.raises(ValueError):
            exact_cover(rows[:25], TARGETS, len(POPULATION), PAPER_R420)

    def test_empty_targets(self):
        exact = exact_cover(
            candidates_for(), [], len(POPULATION), PAPER_R420
        )
        assert exact.bitmasks == []
