"""Tests for candidate bitmask enumeration and the indexed table (Fig 10)."""

import numpy as np
import pytest

from repro.core.bitmask import (
    CandidateRow,
    IndexedBitmaskTable,
    indicator_bitmap,
)
from repro.gen2.epc import EPC, random_epc_population

# Fig 9/10's six-bit population.
POPULATION = [
    EPC.from_bits("001110"),
    EPC.from_bits("010010"),
    EPC.from_bits("101100"),
    EPC.from_bits("110110"),
]


class TestIndicatorBitmap:
    def test_positions(self):
        v = indicator_bitmap(4, [1, 3])
        assert list(v) == [False, True, False, True]

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            indicator_bitmap(4, [4])


class TestCandidateRows:
    def test_full_epc_rows_present(self):
        table = IndexedBitmaskTable(POPULATION)
        rows = table.candidate_rows([0, 1, 2])
        singles = [r for r in rows if r.covered_count == 1]
        covered = {r.covered_indices()[0] for r in singles}
        assert {0, 1, 2} <= covered

    def test_multi_target_masks_found(self):
        """Fig 9: targets 001110 and 010010 share '10' at pointer 4."""
        table = IndexedBitmaskTable(POPULATION)
        rows = table.candidate_rows([0, 1])
        multi = [
            r for r in rows if set(r.covered_indices()) >= {0, 1}
        ]
        assert multi  # at least one shared-window mask exists

    def test_coverage_correctness(self):
        table = IndexedBitmaskTable(POPULATION)
        for row in table.candidate_rows([0, 1, 2]):
            expected = [row.bitmask.covers(epc) for epc in POPULATION]
            assert list(row.coverage) == expected

    def test_identical_coverage_merged(self):
        table = IndexedBitmaskTable(POPULATION)
        rows = table.candidate_rows([0, 1, 2])
        seen = set()
        for row in rows:
            key = row.coverage.tobytes()
            assert key not in seen
            seen.add(key)

    def test_pruning_matches_exhaustive_for_greedy_purposes(self):
        """Every multi-target coverage found exhaustively must also exist in
        the pruned table (single-target masks are dominated by full-EPC)."""
        epcs = random_epc_population(12, rng=3, length=16)
        targets = [0, 1, 2, 3]
        pruned = IndexedBitmaskTable(epcs, max_mask_length=16)
        full = IndexedBitmaskTable(
            epcs, max_mask_length=16, include_dominated=True
        )
        pruned_covers = {
            row.coverage.tobytes() for row in pruned.candidate_rows(targets)
        }
        for row in full.candidate_rows(targets):
            n_targets_covered = sum(row.coverage[t] for t in targets)
            if n_targets_covered >= 2:
                assert row.coverage.tobytes() in pruned_covers

    def test_no_targets(self):
        table = IndexedBitmaskTable(POPULATION)
        assert table.candidate_rows([]) == []

    def test_bad_target_index(self):
        table = IndexedBitmaskTable(POPULATION)
        with pytest.raises(IndexError):
            table.candidate_rows([7])


class TestPopulationUpdate:
    def test_no_change_detected(self):
        table = IndexedBitmaskTable(POPULATION)
        assert not table.update_population(list(POPULATION))

    def test_change_rebuilds(self):
        table = IndexedBitmaskTable(POPULATION)
        table.candidate_rows([0])
        new_population = POPULATION[:3]
        assert table.update_population(new_population)
        rows = table.candidate_rows([0])
        assert all(len(r.coverage) == 3 for r in rows)

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            IndexedBitmaskTable([EPC.from_bits("10"), EPC.from_bits("100")])

    def test_coverage_of_arbitrary_mask(self):
        table = IndexedBitmaskTable(POPULATION)
        from repro.gen2.select import BitMask

        coverage = table.coverage_of(BitMask.from_bits("10", 4))
        assert list(coverage) == [True, True, False, True]

    def test_invalid_max_length(self):
        with pytest.raises(ValueError):
            IndexedBitmaskTable(POPULATION, max_mask_length=0)
