"""Tests for Phase I motion assessment."""

import numpy as np
import pytest

from repro.core.motion import MotionAssessor
from repro.gen2.epc import random_epc_population
from repro.radio.measurement import TagObservation
from repro.util.circular import TWO_PI


def obs(epc, t, phase, antenna=0, channel=0, rss=-50.0):
    return TagObservation(
        epc=epc,
        time_s=t,
        phase_rad=float(np.mod(phase, TWO_PI)),
        rss_dbm=rss,
        antenna_index=antenna,
        channel_index=channel,
    )


@pytest.fixture
def epcs():
    return random_epc_population(3, rng=1)


class TestAssessment:
    def test_stationary_tag_converges(self, epcs):
        rng = np.random.default_rng(0)
        assessor = MotionAssessor()
        for i in range(300):
            assessor.observe(obs(epcs[0], i * 0.02, 1.0 + rng.normal(0, 0.1)))
        assessor.assess()  # close the training cycle
        assessor.observe(obs(epcs[0], 10.0, 1.0))
        verdicts = assessor.assess()
        assert not verdicts[epcs[0].value].moving

    def test_new_tag_starts_moving(self, epcs):
        assessor = MotionAssessor()
        assessor.observe(obs(epcs[0], 0.0, 1.0))
        verdicts = assessor.assess()
        assert verdicts[epcs[0].value].moving

    def test_jump_flags_moving(self, epcs):
        rng = np.random.default_rng(0)
        assessor = MotionAssessor()
        for i in range(300):
            assessor.observe(obs(epcs[0], i * 0.02, 1.0 + rng.normal(0, 0.1)))
        assessor.assess()
        assessor.observe(obs(epcs[0], 10.0, 2.5))
        assert assessor.assess()[epcs[0].value].moving

    def test_any_vote_rule(self, epcs):
        rng = np.random.default_rng(0)
        assessor = MotionAssessor(vote_rule="any")
        for i in range(300):
            assessor.observe(obs(epcs[0], i * 0.02, 1.0 + rng.normal(0, 0.1)))
        assessor.assess()
        assessor.observe(obs(epcs[0], 10.0, 1.0))
        assessor.observe(obs(epcs[0], 10.1, 2.5))  # one bad reading
        assert assessor.assess()[epcs[0].value].moving

    def test_majority_vote_rule(self, epcs):
        rng = np.random.default_rng(0)
        assessor = MotionAssessor(vote_rule="majority")
        for i in range(300):
            assessor.observe(obs(epcs[0], i * 0.02, 1.0 + rng.normal(0, 0.1)))
        assessor.assess()
        assessor.observe(obs(epcs[0], 10.0, 1.0))
        assessor.observe(obs(epcs[0], 10.1, 1.0))
        assessor.observe(obs(epcs[0], 10.2, 2.5))
        assert not assessor.assess()[epcs[0].value].moving

    def test_invalid_vote_rule(self):
        with pytest.raises(ValueError):
            MotionAssessor(vote_rule="plurality")

    def test_assess_clears_cycle(self, epcs):
        assessor = MotionAssessor()
        assessor.observe(obs(epcs[0], 0.0, 1.0))
        assessor.assess()
        assert assessor.assess() == {}


class TestSharding:
    def test_models_keyed_per_antenna(self, epcs):
        assessor = MotionAssessor()
        assessor.observe(obs(epcs[0], 0.0, 1.0, antenna=0))
        assessor.observe(obs(epcs[0], 0.1, 4.0, antenna=1))
        assert assessor.shard_count(epcs[0].value) == 2

    def test_channel_keying_optional(self, epcs):
        keyed = MotionAssessor(key_by_channel=True)
        keyed.observe(obs(epcs[0], 0.0, 1.0, channel=0))
        keyed.observe(obs(epcs[0], 0.1, 1.0, channel=5))
        assert keyed.shard_count(epcs[0].value) == 2

        merged = MotionAssessor(key_by_channel=False)
        merged.observe(obs(epcs[0], 0.0, 1.0, channel=0))
        merged.observe(obs(epcs[0], 0.1, 1.0, channel=5))
        assert merged.shard_count(epcs[0].value) == 1


class TestExpiry:
    def test_stale_tags_dropped(self, epcs):
        assessor = MotionAssessor(expire_after_s=5.0)
        assessor.observe(obs(epcs[0], 0.0, 1.0))
        assessor.observe(obs(epcs[1], 8.0, 1.0))
        dropped = assessor.expire(now_s=10.0)
        assert dropped == 1
        assert epcs[0].value not in assessor.known_epc_values()
        assert epcs[1].value in assessor.known_epc_values()

    def test_no_expiry_when_fresh(self, epcs):
        assessor = MotionAssessor(expire_after_s=5.0)
        assessor.observe(obs(epcs[0], 0.0, 1.0))
        assert assessor.expire(now_s=1.0) == 0
