"""Tests for the Phase II target scheduler."""

import pytest

from repro.core.cost import PAPER_R420
from repro.core.scheduler import TargetScheduler
from repro.gen2.epc import random_epc_population


@pytest.fixture
def population():
    return random_epc_population(20, rng=5)


class TestPlan:
    def test_builds_rospec(self, population):
        scheduler = TargetScheduler(PAPER_R420, rng=1)
        targets = {population[0].value, population[1].value}
        plan = scheduler.plan(population, targets, (0, 1), 5.0, rospec_id=7)
        assert plan.rospec is not None
        assert plan.rospec.rospec_id == 7
        assert plan.rospec.duration_s == 5.0
        assert len(plan.rospec.ai_specs) == len(plan.selection.bitmasks)

    def test_covers_all_targets(self, population):
        scheduler = TargetScheduler(PAPER_R420, rng=1)
        targets = {population[i].value for i in range(4)}
        plan = scheduler.plan(population, targets, (0,), 5.0)
        for i in range(4):
            assert any(
                mask.covers(population[i])
                for mask in plan.selection.bitmasks
            )

    def test_absent_targets_ignored(self, population):
        scheduler = TargetScheduler(PAPER_R420, rng=1)
        plan = scheduler.plan(population, {123456789}, (0,), 5.0)
        assert plan.rospec is None
        assert plan.target_epcs == []

    def test_naive_method(self, population):
        scheduler = TargetScheduler(PAPER_R420, method="naive")
        targets = {population[i].value for i in range(3)}
        plan = scheduler.plan(population, targets, (0,), 5.0)
        assert plan.selection.method == "naive"
        assert len(plan.selection.bitmasks) == 3

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            TargetScheduler(PAPER_R420, method="magic")

    def test_planning_time_recorded(self, population):
        scheduler = TargetScheduler(PAPER_R420)
        plan = scheduler.plan(population, {population[0].value}, (0,), 5.0)
        assert plan.planning_wall_s >= 0.0


class TestAntennaHints:
    def test_hints_restrict_ports(self, population):
        scheduler = TargetScheduler(PAPER_R420, method="naive")
        targets = {population[0].value, population[1].value}
        hints = {population[0].value: {2}, population[1].value: {0, 3}}
        plan = scheduler.plan(
            population, targets, (0, 1, 2, 3), 5.0, antenna_hints=hints
        )
        ports = {spec.antenna_ids for spec in plan.rospec.ai_specs}
        assert (2,) in ports
        assert (0, 3) in ports

    def test_unhinted_target_uses_all_ports(self, population):
        scheduler = TargetScheduler(PAPER_R420, method="naive")
        plan = scheduler.plan(
            population,
            {population[0].value},
            (0, 1),
            5.0,
            antenna_hints={},
        )
        assert plan.rospec.ai_specs[0].antenna_ids == (0, 1)
