"""Property-based tests for the Phase II planner (setcover + bitmask table).

``tests/test_properties.py`` covers cross-module invariants; this module
drills into the cover search itself: soundness of every chosen mask, the
collateral accounting, and cost monotonicity along the planner's two free
axes (mask-length budget and candidate-set growth).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.bitmask import IndexedBitmaskTable, indicator_bitmap
from repro.core.cost import CostModel
from repro.core.setcover import (
    exact_cover,
    greedy_cover,
    naive_selection,
    select_bitmasks,
)
from repro.gen2.epc import EPC

MODEL = CostModel(tau0_s=0.019, tau_bar_s=0.00018)

epc_values = st.integers(min_value=0, max_value=2**16 - 1)


@st.composite
def populations(draw, min_size=2, max_size=10):
    """Unique 16-bit EPC populations."""
    values = draw(
        st.lists(epc_values, min_size=min_size, max_size=max_size, unique=True)
    )
    return [EPC(v, 16) for v in values]


@st.composite
def cover_instances(draw, min_size=3, max_size=9, max_targets=4):
    """A population plus a non-empty prefix target set."""
    population = draw(populations(min_size=min_size, max_size=max_size))
    n_targets = draw(
        st.integers(min_value=1, max_value=min(max_targets, len(population)))
    )
    return population, list(range(n_targets))


# -- soundness ---------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(cover_instances())
def test_greedy_covers_every_target(instance):
    """Every target is covered by at least one chosen bitmask."""
    population, targets = instance
    table = IndexedBitmaskTable(population, max_mask_length=16)
    selection = greedy_cover(
        table.candidate_rows(targets), targets, len(population), MODEL, rng=3
    )
    for i in targets:
        assert any(m.covers(population[i]) for m in selection.bitmasks)


@settings(max_examples=50, deadline=None)
@given(cover_instances())
def test_no_chosen_mask_is_pure_collateral(instance):
    """Each chosen bitmask covers at least one target.

    The greedy's gain is |V_i & V|; a mask covering only non-targets has
    zero gain at every iteration and must never be selected.
    """
    population, targets = instance
    table = IndexedBitmaskTable(population, max_mask_length=16)
    selection = greedy_cover(
        table.candidate_rows(targets), targets, len(population), MODEL, rng=3
    )
    target_set = {population[i].value for i in targets}
    for mask in selection.bitmasks:
        covered = {e.value for e in population if mask.covers(e)}
        assert covered & target_set, f"mask {mask} covers no target"


@settings(max_examples=50, deadline=None)
@given(cover_instances())
def test_collateral_accounting_is_exact(instance):
    """n_collateral equals |union of chosen coverage minus targets|."""
    population, targets = instance
    table = IndexedBitmaskTable(population, max_mask_length=16)
    selection = greedy_cover(
        table.candidate_rows(targets), targets, len(population), MODEL, rng=3
    )
    union = np.zeros(len(population), dtype=bool)
    for mask in selection.bitmasks:
        union |= np.array([mask.covers(e) for e in population])
    expected = int((union & ~indicator_bitmap(len(population), targets)).sum())
    assert selection.n_collateral == expected
    assert selection.n_targets == len(targets)


# -- cost monotonicity -------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(cover_instances(max_size=7, max_targets=3))
def test_exact_cost_monotone_in_mask_length(instance):
    """Optimal cost never increases when the mask-length budget grows.

    A longer budget only *adds* candidate rows (every short window is still
    enumerable), so the exact optimum over the larger table is at most the
    optimum over the smaller one.
    """
    population, targets = instance
    costs = []
    for max_len in (4, 8, 16):
        table = IndexedBitmaskTable(population, max_mask_length=max_len)
        rows = table.candidate_rows(targets)
        if len(rows) > 18:
            return  # exact solver bound; instance too dense to compare
        costs.append(
            exact_cover(rows, targets, len(population), MODEL).total_cost_s
        )
    assert costs[1] <= costs[0] + 1e-12
    assert costs[2] <= costs[1] + 1e-12


@settings(max_examples=40, deadline=None)
@given(cover_instances())
def test_select_bitmasks_never_worse_than_naive(instance):
    """The paper's adopt-the-worst-option rule bounds the selection cost."""
    population, targets = instance
    table = IndexedBitmaskTable(population, max_mask_length=16)
    target_epcs = [population[i] for i in targets]
    selection = select_bitmasks(
        table.candidate_rows(targets),
        targets,
        target_epcs,
        len(population),
        MODEL,
        rng=3,
    )
    naive = naive_selection(target_epcs, MODEL)
    assert selection.total_cost_s <= naive.total_cost_s + 1e-12
    # And the reported cost is self-consistent with the chosen masks.
    recomputed = MODEL.sweep_cost(selection.covered_counts)
    assert abs(selection.total_cost_s - recomputed) < 1e-12


@settings(max_examples=25, deadline=None)
@given(cover_instances(max_size=7, max_targets=3))
def test_greedy_at_least_exact(instance):
    """Greedy cost is lower-bounded by the exact optimum."""
    population, targets = instance
    table = IndexedBitmaskTable(population, max_mask_length=8)
    rows = table.candidate_rows(targets)
    if len(rows) > 18:
        return
    greedy = greedy_cover(rows, targets, len(population), MODEL, rng=3)
    exact = exact_cover(rows, targets, len(population), MODEL)
    assert greedy.total_cost_s >= exact.total_cost_s - 1e-12


# -- indexed table -----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(cover_instances())
def test_full_epc_rows_cover_exactly_one_tag(instance):
    """Each target's full-EPC row covers that tag and nothing else."""
    population, targets = instance
    table = IndexedBitmaskTable(population, max_mask_length=16)
    rows = table.candidate_rows(targets)
    epc_length = population[0].length
    full_rows = [r for r in rows if r.bitmask.length == epc_length]
    # Full-EPC rows are added first, so the identical-coverage merge can
    # never absorb them: exactly one per target.
    assert len(full_rows) == len(targets)
    for row in full_rows:
        assert row.covered_count == 1
        (index,) = row.covered_indices()
        assert row.bitmask.covers(population[index])


@settings(max_examples=40, deadline=None)
@given(cover_instances())
def test_candidate_rows_have_unique_coverage(instance):
    """The identical-coverage merge leaves no duplicate bitmaps."""
    population, targets = instance
    table = IndexedBitmaskTable(population, max_mask_length=16)
    rows = table.candidate_rows(targets)
    keys = {row.coverage.tobytes() for row in rows}
    assert len(keys) == len(rows)
