"""Tests for the reading-history database."""

import pytest

from repro.core.history import IrrSample, ReadingHistory
from repro.gen2.epc import random_epc_population
from repro.radio.measurement import TagObservation


def obs(epc, t):
    return TagObservation(
        epc=epc,
        time_s=t,
        phase_rad=1.0,
        rss_dbm=-50.0,
        antenna_index=0,
        channel_index=0,
    )


@pytest.fixture
def epcs():
    return random_epc_population(2, rng=1)


class TestStorage:
    def test_counts(self, epcs):
        history = ReadingHistory()
        history.add(obs(epcs[0], 0.0))
        history.add(obs(epcs[0], 0.1))
        history.add(obs(epcs[1], 0.2))
        assert history.count(epcs[0].value) == 2
        assert history.total_reads == 3

    def test_add_all(self, epcs):
        history = ReadingHistory()
        n = history.add_all([obs(epcs[0], t) for t in (0.0, 0.1, 0.2)])
        assert n == 3

    def test_unknown_tag_zero(self, epcs):
        history = ReadingHistory()
        assert history.count(epcs[0].value) == 0
        assert history.last_seen(epcs[0].value) is None

    def test_trim_to_max(self, epcs):
        history = ReadingHistory(max_per_tag=2)
        for t in (0.0, 0.1, 0.2, 0.3):
            history.add(obs(epcs[0], t))
        stored = history.observations(epcs[0].value)
        assert [o.time_s for o in stored] == [0.2, 0.3]

    def test_invalid_max(self):
        with pytest.raises(ValueError):
            ReadingHistory(max_per_tag=0)

    def test_clear(self, epcs):
        history = ReadingHistory()
        history.add(obs(epcs[0], 0.0))
        history.clear()
        assert history.total_reads == 0


class TestIrr:
    def test_irr_computation(self, epcs):
        history = ReadingHistory()
        for t in (0.0, 0.5, 1.0, 1.5):
            history.add(obs(epcs[0], t))
        sample = history.irr(epcs[0].value, 0.0, 2.0)
        assert sample.n_reads == 4
        assert sample.irr_hz == pytest.approx(2.0)

    def test_window_half_open(self, epcs):
        history = ReadingHistory()
        history.add(obs(epcs[0], 1.0))
        assert history.irr(epcs[0].value, 0.0, 1.0).n_reads == 0
        assert history.irr(epcs[0].value, 1.0, 2.0).n_reads == 1

    def test_invalid_window(self, epcs):
        history = ReadingHistory()
        with pytest.raises(ValueError):
            history.reads_in_window(epcs[0].value, 2.0, 1.0)

    def test_irr_table(self, epcs):
        history = ReadingHistory()
        history.add(obs(epcs[0], 0.5))
        table = history.irr_table([e.value for e in epcs], 0.0, 1.0)
        assert table[epcs[0].value] == pytest.approx(1.0)
        assert table[epcs[1].value] == 0.0

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            IrrSample(epc_value=1, n_reads=3, interval_s=0.0).irr_hz
