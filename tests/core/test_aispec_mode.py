"""Tests for the single-AISpec Phase II realisation (paper Section 6)."""

import numpy as np
import pytest

from repro.core import TagwatchConfig
from repro.core.cost import PAPER_R420
from repro.core.scheduler import TargetScheduler
from repro.experiments.harness import build_lab, irr_by_tag
from repro.gen2.epc import random_epc_population


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TagwatchConfig(aispec_mode="triple")
        with pytest.raises(ValueError):
            TargetScheduler(PAPER_R420, aispec_mode="triple")


class TestRospecShape:
    def test_single_mode_one_aispec(self):
        population = random_epc_population(20, rng=5)
        scheduler = TargetScheduler(
            PAPER_R420, method="naive", aispec_mode="single"
        )
        targets = {population[i].value for i in range(4)}
        plan = scheduler.plan(population, targets, (0, 1), 5.0)
        assert len(plan.rospec.ai_specs) == 1
        assert len(plan.rospec.ai_specs[0].filters) == 4

    def test_per_bitmask_mode_k_aispecs(self):
        population = random_epc_population(20, rng=5)
        scheduler = TargetScheduler(PAPER_R420, method="naive")
        targets = {population[i].value for i in range(4)}
        plan = scheduler.plan(population, targets, (0, 1), 5.0)
        assert len(plan.rospec.ai_specs) == 4


class TestUnionSemantics:
    def test_union_round_reads_exactly_the_targets(self):
        setup = build_lab(n_tags=20, n_mobile=0, seed=9, n_antennas=1)
        scheduler = TargetScheduler(
            PAPER_R420, method="naive", aispec_mode="single"
        )
        targets = {setup.epcs[i].value for i in range(3)}
        plan = scheduler.plan(setup.epcs, targets, (0,), 2.0)
        observations, _ = setup.reader.execute_rospec(plan.rospec)
        assert {o.epc.value for o in observations} == targets

    def test_single_mode_outreads_per_bitmask_for_naive_masks(self):
        """With k full-EPC masks, one union round per sweep beats k
        singleton rounds: one start-up instead of k."""
        irrs = {}
        for mode in ("single", "per-bitmask"):
            setup = build_lab(n_tags=40, n_mobile=0, seed=11, n_antennas=1)
            scheduler = TargetScheduler(
                PAPER_R420, method="naive", aispec_mode=mode
            )
            targets = {setup.epcs[i].value for i in range(5)}
            plan = scheduler.plan(setup.epcs, targets, (0,), 8.0)
            t0 = setup.reader.time_s
            observations, _ = setup.reader.execute_rospec(plan.rospec)
            irr = irr_by_tag(observations, t0, setup.reader.time_s)
            irrs[mode] = float(
                np.mean([irr.get(v, 0.0) for v in targets])
            )
        assert irrs["single"] > 1.5 * irrs["per-bitmask"]


class TestTagwatchIntegration:
    def test_live_loop_with_single_mode(self):
        setup = build_lab(n_tags=16, n_mobile=1, seed=13, partition=True)
        tagwatch = setup.tagwatch(
            TagwatchConfig(phase2_duration_s=0.8, aispec_mode="single")
        )
        tagwatch.warm_up(14.0)
        results = tagwatch.run(3)
        final = results[-1]
        assert not final.fallback
        assert setup.mobile_epc_values <= final.target_epc_values
        assert len(final.plan.rospec.ai_specs) == 1
