"""Differential tests: packed lazy-greedy set cover vs the dense reference.

``greedy_cover`` (packed bitsets + lazy max-heap) must be bit-for-bit the
same search as ``greedy_cover_reference`` (bool arrays, rescan everything):
same picks in the same order, same tie-break draws (hence the same RNG
stream position), same trace events, same cost and collateral.  Hypothesis
drives both over random populations and target sets and compares all of it.
The packed representation itself is checked via pack/unpack round-trips,
and the packed ``exact_cover`` against a bool-mask reimplementation.
"""

import itertools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.bitmask import (
    IndexedBitmaskTable,
    indicator_bitmap,
    pack_bitmap,
    pack_indices,
    unpack_bitmap,
)
from repro.core.cost import CostModel
from repro.core.setcover import (
    exact_cover,
    greedy_cover,
    greedy_cover_reference,
)
from repro.gen2.epc import EPC
from repro.obs.tracer import Tracer, use_tracer

MODEL = CostModel(tau0_s=0.019, tau_bar_s=0.00018)


@st.composite
def cover_instances(draw, min_size=2, max_size=24):
    """A unique-EPC population plus a non-empty target subset."""
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**24 - 1),
            min_size=min_size,
            max_size=max_size,
            unique=True,
        )
    )
    population = [EPC(v, 24) for v in values]
    n_targets = draw(st.integers(min_value=1, max_value=len(population)))
    return population, list(range(n_targets))


def _run_traced(solver, candidates, targets, n, seed):
    tracer = Tracer(detail="round")
    with use_tracer(tracer):
        selection = solver(candidates, targets, n, MODEL, rng=seed)
    events = [
        (e.name, tuple(sorted(e.args.items())))
        for e in tracer.events("setcover.iteration")
    ]
    return selection, events


@settings(max_examples=50, deadline=None)
@given(instance=cover_instances(), seed=st.integers(0, 2**31 - 1))
def test_lazy_greedy_matches_reference(instance, seed):
    population, targets = instance
    table = IndexedBitmaskTable(population, max_mask_length=12)
    candidates = table.candidate_rows(targets)
    n = len(population)

    lazy, lazy_events = _run_traced(
        greedy_cover, candidates, targets, n, seed
    )
    dense, dense_events = _run_traced(
        greedy_cover_reference, candidates, targets, n, seed
    )

    assert [
        (b.mask, b.pointer, b.length) for b in lazy.bitmasks
    ] == [(b.mask, b.pointer, b.length) for b in dense.bitmasks]
    assert lazy.covered_counts == dense.covered_counts
    assert lazy.total_cost_s == dense.total_cost_s
    assert lazy.n_targets == dense.n_targets
    assert lazy.n_collateral == dense.n_collateral
    assert lazy_events == dense_events

    # Same number of tie-break draws consumed: both generators must sit at
    # the same stream position afterwards.
    gen_a = np.random.default_rng(seed)
    gen_b = np.random.default_rng(seed)
    with use_tracer(Tracer(detail="round")):
        greedy_cover(candidates, targets, n, MODEL, rng=gen_a)
        greedy_cover_reference(candidates, targets, n, MODEL, rng=gen_b)
    assert gen_a.integers(0, 2**32, size=4).tolist() == gen_b.integers(
        0, 2**32, size=4
    ).tolist()


@settings(max_examples=100, deadline=None)
@given(
    bits=st.lists(st.booleans(), min_size=0, max_size=200),
)
def test_pack_unpack_roundtrip(bits):
    mask = np.array(bits, dtype=bool)
    packed = pack_bitmap(mask)
    assert packed.bit_count() == int(mask.sum())
    assert np.array_equal(unpack_bitmap(packed, mask.size), mask)


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=150),
    data=st.data(),
)
def test_pack_indices_matches_indicator(n, data):
    indices = data.draw(
        st.lists(st.integers(0, n - 1), min_size=0, max_size=n, unique=True)
    )
    packed = pack_indices(n, indices)
    assert packed == pack_bitmap(indicator_bitmap(n, indices))


def _exact_cover_bool(candidates, target_indices, population_size, model):
    """Reimplementation of exact_cover over bool masks (test oracle)."""
    v = indicator_bitmap(population_size, target_indices)
    best = None
    for size in range(0 if not v.any() else 1, len(candidates) + 1):
        for combo in itertools.combinations(range(len(candidates)), size):
            union = np.zeros(population_size, dtype=bool)
            for i in combo:
                union |= candidates[i].coverage
            if not (v & ~union).any():
                counts = [candidates[i].covered_count for i in combo]
                cost = model.sweep_cost(counts)
                if best is None or cost < best[0]:
                    best = (cost, combo, int((union & ~v).sum()))
    return best


@settings(max_examples=25, deadline=None)
@given(instance=cover_instances(min_size=2, max_size=8))
def test_exact_cover_packed_matches_bool(instance):
    population, targets = instance
    table = IndexedBitmaskTable(population, max_mask_length=8)
    candidates = table.candidate_rows(targets)[:10]
    # Targets outside the truncated candidate set make the instance
    # infeasible; full-EPC rows come first, so keep targets they cover.
    covered = np.zeros(len(population), dtype=bool)
    for row in candidates:
        covered |= row.coverage
    targets = [t for t in targets if covered[t]]
    if not targets:
        return
    packed = exact_cover(candidates, targets, len(population), MODEL)
    oracle = _exact_cover_bool(candidates, targets, len(population), MODEL)
    assert oracle is not None
    cost, combo, collateral = oracle
    assert packed.total_cost_s == cost
    assert packed.n_collateral == collateral
    assert len(packed.bitmasks) == len(combo)
