"""Integration tests for the Tagwatch middleware loop."""

import numpy as np
import pytest

from repro.core import Tagwatch, TagwatchConfig
from repro.experiments.harness import build_lab


def make_tagwatch(n_tags=12, n_mobile=1, seed=21, **config_kwargs):
    setup = build_lab(
        n_tags=n_tags, n_mobile=n_mobile, seed=seed, n_antennas=2
    )
    defaults = dict(phase2_duration_s=0.8)
    defaults.update(config_kwargs)
    return setup, setup.tagwatch(TagwatchConfig(**defaults))


class TestCycleMechanics:
    def test_cycle_produces_phases(self):
        _, tagwatch = make_tagwatch()
        result = tagwatch.run_cycle()
        assert result.phase1_observations
        assert result.phase2_observations
        assert result.phase2_end_s > result.phase1_end_s > result.phase1_start_s

    def test_cycles_indexed(self):
        _, tagwatch = make_tagwatch()
        results = tagwatch.run(3)
        assert [r.index for r in results] == [0, 1, 2]

    def test_run_requires_cycles(self):
        _, tagwatch = make_tagwatch()
        with pytest.raises(ValueError):
            tagwatch.run(0)

    def test_all_reads_delivered_to_history(self):
        _, tagwatch = make_tagwatch()
        result = tagwatch.run_cycle()
        n_reads = len(result.phase1_observations) + len(
            result.phase2_observations
        )
        assert tagwatch.history.total_reads == n_reads

    def test_subscribers_receive_reads(self):
        _, tagwatch = make_tagwatch()
        received = []
        tagwatch.subscribe(received.append)
        result = tagwatch.run_cycle()
        assert len(received) == len(result.phase1_observations) + len(
            result.phase2_observations
        )


class TestAdaptiveBehaviour:
    def test_initial_cycles_fall_back(self):
        """All tags look mobile before the immobility models mature."""
        _, tagwatch = make_tagwatch()
        result = tagwatch.run_cycle()
        assert result.fallback

    def test_steady_state_targets_mobile_tag(self):
        setup, tagwatch = make_tagwatch()
        tagwatch.warm_up(12.0)
        results = tagwatch.run(4)
        final = results[-1]
        assert not final.fallback
        assert setup.mobile_epc_values <= final.target_epc_values
        # The schedule must stay selective: far fewer targets than tags.
        assert len(final.target_epc_values) <= 4

    def test_mobile_tag_gets_higher_irr(self):
        setup, tagwatch = make_tagwatch()
        tagwatch.warm_up(12.0)
        results = tagwatch.run(4)
        t0 = results[1].phase1_start_s
        t1 = results[-1].phase2_end_s
        mobile_value = next(iter(setup.mobile_epc_values))
        mobile_irr = tagwatch.history.irr(mobile_value, t0, t1).irr_hz
        static_irrs = [
            tagwatch.history.irr(e.value, t0, t1).irr_hz
            for e in setup.epcs[1:]
        ]
        assert mobile_irr > 3 * float(np.mean(static_irrs))

    def test_fallback_when_everything_moves(self):
        setup, tagwatch = make_tagwatch(n_tags=6, n_mobile=4)
        tagwatch.warm_up(10.0)
        result = tagwatch.run_cycle()
        assert result.fallback
        assert "fraction" in result.fallback_reason or result.fallback_reason

    def test_concerned_tag_always_scheduled(self):
        setup, _ = make_tagwatch()
        static_value = setup.epcs[-1].value
        config = TagwatchConfig(phase2_duration_s=0.8).with_concerned(
            [static_value]
        )
        tagwatch = setup.tagwatch(config)
        tagwatch.warm_up(12.0)
        results = tagwatch.run(3)
        assert static_value in results[-1].target_epc_values

    def test_naive_selection_method(self):
        setup, _ = make_tagwatch()
        config = TagwatchConfig(
            phase2_duration_s=0.8, selection_method="naive"
        )
        tagwatch = setup.tagwatch(config)
        tagwatch.warm_up(12.0)
        result = tagwatch.run_cycle()
        if not result.fallback:
            assert result.plan.selection.method == "naive"


class TestWarmUp:
    def test_warm_up_returns_read_count(self):
        _, tagwatch = make_tagwatch()
        assert tagwatch.warm_up(2.0) > 0

    def test_warm_up_validates_duration(self):
        _, tagwatch = make_tagwatch()
        with pytest.raises(ValueError):
            tagwatch.warm_up(0.0)

    def test_warm_up_feeds_history(self):
        _, tagwatch = make_tagwatch()
        tagwatch.warm_up(2.0)
        assert tagwatch.history.total_reads > 0
