"""Tests for the self-learning Gaussian-mixture immobility model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.gmm import GaussianMixtureStack, GaussianMode, GmmParams
from repro.util.circular import TWO_PI


def stationary_stream(center, std=0.1, n=300, seed=0):
    rng = np.random.default_rng(seed)
    return np.mod(center + rng.normal(0, std, n), TWO_PI)


class TestParams:
    def test_paper_defaults(self):
        p = GmmParams()
        assert p.max_modes == 8  # K
        assert p.learning_rate == 0.001  # alpha
        assert p.match_threshold == 3.0  # xi

    def test_validation(self):
        with pytest.raises(ValueError):
            GmmParams(max_modes=0)
        with pytest.raises(ValueError):
            GmmParams(learning_rate=0.0)
        with pytest.raises(ValueError):
            GmmParams(match_threshold=0.0)
        with pytest.raises(ValueError):
            GmmParams(reliable_std=0.01, min_std=0.02)

    def test_rss_defaults_wider(self):
        assert GmmParams.for_rss().initial_std > GmmParams.for_phase().initial_std


class TestLearning:
    def test_converges_on_stationary_signal(self):
        stack = GaussianMixtureStack()
        results = [stack.update(v) for v in stationary_stream(1.0)]
        assert all(r.stationary for r in results[-50:])

    def test_learned_std_matches_noise(self):
        stack = GaussianMixtureStack()
        for v in stationary_stream(1.0, std=0.1):
            stack.update(v)
        top = stack.sorted_modes()[0]
        assert top.std == pytest.approx(0.1, rel=0.5)

    def test_initially_in_motion(self):
        """The paper: all tags are assumed moving until models mature."""
        stack = GaussianMixtureStack()
        assert not stack.update(1.0).stationary

    def test_maturity_takes_tens_of_readings(self):
        """Fig 14: ~50-70 readings before a mode can vouch (alpha=0.001,
        reliable weight 0.05)."""
        stack = GaussianMixtureStack()
        results = [stack.update(v) for v in stationary_stream(1.0)]
        first = next(i for i, r in enumerate(results) if r.stationary)
        assert 30 <= first <= 90

    def test_movement_flagged_after_convergence(self):
        stack = GaussianMixtureStack()
        for v in stationary_stream(1.0):
            stack.update(v)
        assert not stack.update(1.0 + 1.5).stationary

    def test_small_movement_within_threshold_not_flagged(self):
        stack = GaussianMixtureStack()
        for v in stationary_stream(1.0, std=0.1):
            stack.update(v)
        assert stack.update(1.05).stationary

    def test_multimodal_learning(self):
        """Two alternating multipath states both become reliable modes."""
        rng = np.random.default_rng(1)
        stack = GaussianMixtureStack()
        # Runs of each state, as a person pausing at two positions creates.
        for block in range(40):
            center = 1.0 if block % 2 == 0 else 2.5
            for _ in range(10):
                stack.update(float(np.mod(center + rng.normal(0, 0.08), TWO_PI)))
        reliable = stack.reliable_modes()
        assert len(reliable) >= 2

    def test_wrap_around_cluster(self):
        """A cluster straddling 0/2*pi must behave like any other."""
        stack = GaussianMixtureStack()
        results = [stack.update(v) for v in stationary_stream(0.0, std=0.08)]
        assert all(r.stationary for r in results[-30:])
        top = stack.sorted_modes()[0]
        assert min(top.mean, TWO_PI - top.mean) < 0.3

    def test_sweeping_phase_never_trusted(self):
        """A periodically moving tag (turntable) revisits phases but never
        matches one mode consecutively: it must stay 'moving'."""
        rng = np.random.default_rng(2)
        stack = GaussianMixtureStack()
        flagged = []
        for i in range(2000):
            value = float(np.mod(i * 2.7 + rng.normal(0, 0.1), TWO_PI))
            flagged.append(stack.update(value).stationary)
        assert np.mean(flagged[-500:]) < 0.2


class TestModeManagement:
    def test_capacity_bounded(self):
        stack = GaussianMixtureStack(GmmParams(max_modes=4))
        rng = np.random.default_rng(3)
        for _ in range(200):
            stack.update(float(rng.uniform(0, TWO_PI)))
        assert len(stack) <= 4

    def test_eviction_drops_lowest_priority(self):
        stack = GaussianMixtureStack(GmmParams(max_modes=2))
        for v in stationary_stream(1.0, n=100):
            stack.update(v)
        strong = stack.sorted_modes()[0]
        stack.update(4.0)  # new mode evicts the weaker hypothesis
        assert strong in stack.modes

    def test_weight_update_follows_eqn_11(self):
        params = GmmParams(learning_rate=0.01)
        stack = GaussianMixtureStack(params)
        stack.update(1.0)
        w0 = stack.modes[0].weight
        stack.update(1.0)  # matches
        assert stack.modes[0].weight == pytest.approx(
            (1 - 0.01) * w0 + 0.01
        )

    def test_unmatched_weights_decay(self):
        params = GmmParams(learning_rate=0.01)
        stack = GaussianMixtureStack(params)
        stack.update(1.0)
        stack.update(4.0)  # no match: push second mode
        w_first = stack.modes[0].weight
        stack.update(4.0)  # matches second; first decays
        assert stack.modes[0].weight == pytest.approx((1 - 0.01) * w_first)

    def test_priority_ordering(self):
        a = GaussianMode(mean=0.0, std=0.1, weight=0.5)
        b = GaussianMode(mean=1.0, std=0.5, weight=0.5)
        assert a.priority > b.priority


class TestClassify:
    def test_non_mutating(self):
        stack = GaussianMixtureStack()
        for v in stationary_stream(1.0):
            stack.update(v)
        before = len(stack)
        assert stack.classify(1.0)
        assert not stack.classify(3.0)
        assert len(stack) == before


class TestRssMode:
    def test_linear_distance(self):
        stack = GaussianMixtureStack(GmmParams.for_rss(), circular=False)
        rng = np.random.default_rng(4)
        results = [
            stack.update(float(-52.0 + rng.normal(0, 0.4)))
            for _ in range(300)
        ]
        assert results[-1].stationary
        assert not stack.update(-40.0).stationary


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=TWO_PI - 1e-9),
        min_size=1,
        max_size=60,
    )
)
def test_update_never_breaks_invariants(values):
    stack = GaussianMixtureStack()
    for value in values:
        stack.update(value)
        assert len(stack) <= stack.params.max_modes
        for mode in stack.modes:
            assert mode.std >= stack.params.min_std
            assert 0.0 <= mode.weight <= 1.0
            assert 0.0 <= mode.mean < TWO_PI + 1e-9
