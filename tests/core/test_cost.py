"""Tests for the inventory-cost / IRR model (Definition 1)."""

import numpy as np
import pytest

from repro.core.cost import PAPER_R420, CostModel, irr_drop


class TestInventoryCost:
    def test_single_tag(self):
        model = CostModel(tau0_s=0.019, tau_bar_s=0.00018)
        assert model.inventory_cost(1) == pytest.approx(0.019 + 0.00018)

    def test_matches_formula(self):
        model = PAPER_R420
        n = 30
        expected = 0.019 + 0.00018 * n * np.e * np.log(n)
        assert model.inventory_cost(n) == pytest.approx(expected)

    def test_monotone_increasing(self):
        costs = [PAPER_R420.inventory_cost(n) for n in range(1, 50)]
        assert all(b >= a for a, b in zip(costs, costs[1:]))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PAPER_R420.inventory_cost(-1)

    def test_invalid_constants(self):
        with pytest.raises(ValueError):
            CostModel(tau0_s=-1.0, tau_bar_s=0.001)
        with pytest.raises(ValueError):
            CostModel(tau0_s=0.01, tau_bar_s=0.0)


class TestIrr:
    def test_reciprocal(self):
        assert PAPER_R420.irr(10) == pytest.approx(
            1.0 / PAPER_R420.inventory_cost(10)
        )

    def test_paper_84_percent_drop(self):
        """Section 2.3: measured IRR drops ~84% from n=1 to n~40; the
        analytic model with the paper's own constants gives ~79% (the
        residual is the model-vs-measurement offset at n=1 visible in
        their Fig 2)."""
        assert irr_drop(PAPER_R420, 1, 40) == pytest.approx(0.79, abs=0.04)


class TestSweepCost:
    def test_sums_per_bitmask(self):
        model = PAPER_R420
        assert model.sweep_cost([1, 3]) == pytest.approx(
            model.inventory_cost(1) + model.inventory_cost(3)
        )

    def test_empty_sweep_free(self):
        assert PAPER_R420.sweep_cost([]) == 0.0


class TestFit:
    def test_recovers_known_constants(self):
        truth = CostModel(tau0_s=0.02, tau_bar_s=0.0002)
        counts = list(range(1, 41))
        durations = [truth.inventory_cost(n) for n in counts]
        fitted = CostModel.fit(counts, durations)
        assert fitted.tau0_s == pytest.approx(truth.tau0_s, rel=1e-6)
        assert fitted.tau_bar_s == pytest.approx(truth.tau_bar_s, rel=1e-6)

    def test_robust_to_noise(self):
        rng = np.random.default_rng(0)
        truth = CostModel(tau0_s=0.019, tau_bar_s=0.00018)
        counts = list(range(1, 41)) * 5
        durations = [
            truth.inventory_cost(n) * rng.uniform(0.95, 1.05) for n in counts
        ]
        fitted = CostModel.fit(counts, durations)
        assert fitted.tau0_s == pytest.approx(truth.tau0_s, rel=0.2)
        assert fitted.tau_bar_s == pytest.approx(truth.tau_bar_s, rel=0.2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            CostModel.fit([1, 2], [0.1])

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            CostModel.fit([1], [0.02])

    def test_degenerate_counts(self):
        with pytest.raises(ValueError):
            CostModel.fit([5, 5, 5], [0.1, 0.1, 0.1])

    def test_relative_error(self):
        model = CostModel(tau0_s=0.02, tau_bar_s=0.0002)
        durations = [model.inventory_cost(n) for n in (1, 10, 20)]
        assert model.relative_error([1, 10, 20], durations) < 1e-9
