"""Section 4.3 fidelity: self-learning under environment changes.

- "When do we learn Gaussian models?": a new multipath source makes a
  stationary tag look mobile for ~one cycle, then its new mode matures and
  the tag is classified stationary again — no cold start.
- "Why do we model immobility?": when a tag relocates, the stale models of
  its old position decay and are eventually evicted while the new position
  is learned.
"""

import numpy as np
import pytest

from repro.core.gmm import GaussianMixtureStack, GmmParams
from repro.util.circular import TWO_PI


def noisy(center, rng, std=0.08):
    return float(np.mod(center + rng.normal(0, std), TWO_PI))


class TestNewMultipathLearnedOnline:
    def test_one_burst_of_flags_then_stationary(self):
        """A new reflector shifts the phase to a new mode; after the mode
        matures the tag is quiet again (the paper's 'quick start')."""
        rng = np.random.default_rng(0)
        stack = GaussianMixtureStack()
        for _ in range(300):
            stack.update(noisy(1.0, rng))
        # Environment change: a cabinet arrives, phase now sits at 2.2 rad.
        flags = [
            not stack.update(noisy(2.2, rng)).stationary for _ in range(300)
        ]
        assert all(flags[:5])  # initially misjudged as moving...
        assert not any(flags[-50:])  # ...then learned
        # And the old mode still vouches if the cabinet leaves again.
        assert stack.classify(1.0)

    def test_learning_speed_about_one_cycle(self):
        """~55 readings suffice (one 5 s cycle of intensive Phase II reads)."""
        rng = np.random.default_rng(1)
        stack = GaussianMixtureStack()
        for _ in range(300):
            stack.update(noisy(1.0, rng))
        flags = [
            not stack.update(noisy(2.2, rng)).stationary for _ in range(120)
        ]
        first_quiet = flags.index(False)
        assert first_quiet <= 80


class TestRelocationEvictsStaleModels:
    def test_old_position_models_decay(self):
        rng = np.random.default_rng(2)
        stack = GaussianMixtureStack()
        for _ in range(300):
            stack.update(noisy(1.0, rng))
        old_weight = stack.sorted_modes()[0].weight
        # The tag is moved; its phase now lives at 4.0 rad for a long time.
        for _ in range(3000):
            stack.update(noisy(4.0, rng))
        old_modes = [
            m
            for m in stack.modes
            if abs(m.mean - 1.0) < 0.3
        ]
        if old_modes:  # either evicted entirely, or decayed far down
            assert old_modes[0].weight < old_weight / 2
        new_top = stack.sorted_modes()[0]
        assert abs(new_top.mean - 4.0) < 0.3

    def test_many_relocations_bounded_memory(self):
        rng = np.random.default_rng(3)
        params = GmmParams()
        stack = GaussianMixtureStack(params)
        for position in np.linspace(0.2, 6.0, 12):
            for _ in range(150):
                stack.update(noisy(float(position), rng))
        assert len(stack) <= params.max_modes
