"""Tests for the adaptive Phase II duration extension."""

import pytest

from repro.core import TagwatchConfig
from repro.experiments.harness import build_lab


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TagwatchConfig(phase2_reads_target=0)
        with pytest.raises(ValueError):
            TagwatchConfig(min_phase2_duration_s=0.0)
        with pytest.raises(ValueError):
            TagwatchConfig(
                phase2_duration_s=1.0, min_phase2_duration_s=2.0
            )

    def test_preserved_by_with_concerned(self):
        config = TagwatchConfig(phase2_reads_target=10).with_concerned([1])
        assert config.phase2_reads_target == 10


class TestAdaptiveDuration:
    def _steady(self, **kwargs):
        setup = build_lab(n_tags=20, n_mobile=1, seed=5, partition=True)
        tagwatch = setup.tagwatch(
            TagwatchConfig(phase2_duration_s=5.0, **kwargs)
        )
        tagwatch.warm_up(14.0)
        return tagwatch.run_cycle()

    def test_shrinks_phase2_for_few_targets(self):
        result = self._steady(phase2_reads_target=20)
        assert not result.fallback
        phase2 = result.phase2_end_s - result.phase1_end_s
        assert phase2 < 1.5  # far below the 5 s ceiling

    def test_reads_near_target(self):
        result = self._steady(phase2_reads_target=20)
        per_target = len(result.phase2_observations) / max(
            1, len(result.target_epc_values)
        )
        assert per_target == pytest.approx(20, rel=0.5)

    def test_fixed_mode_unchanged(self):
        result = self._steady()
        phase2 = result.phase2_end_s - result.phase1_end_s
        assert phase2 == pytest.approx(5.0, abs=0.3)

    def test_ceiling_respected(self):
        result = self._steady(phase2_reads_target=100000)
        phase2 = result.phase2_end_s - result.phase1_end_s
        assert phase2 <= 5.0 + 0.3
