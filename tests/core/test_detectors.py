"""Tests for the motion scorers of Fig 12."""

import numpy as np
import pytest

from repro.core.detectors import (
    UNSCORED,
    DifferencingScorer,
    MoGScorer,
    make_scorer,
)
from repro.util.circular import TWO_PI


class TestDifferencing:
    def test_first_reading_scores_zero(self):
        assert DifferencingScorer().score(1.0) == 0.0

    def test_scores_absolute_difference(self):
        scorer = DifferencingScorer()
        scorer.score(1.0)
        assert scorer.score(1.4) == pytest.approx(0.4)

    def test_circular_wrap(self):
        scorer = DifferencingScorer(circular=True)
        scorer.score(TWO_PI - 0.01)
        assert scorer.score(0.02) == pytest.approx(0.03)

    def test_linear_mode(self):
        scorer = DifferencingScorer(circular=False)
        scorer.score(-50.0)
        assert scorer.score(-48.0) == pytest.approx(2.0)


class TestMoG:
    def test_unscored_until_reliable(self):
        scorer = MoGScorer()
        assert scorer.score(1.0) == UNSCORED

    def test_low_score_when_stationary(self):
        rng = np.random.default_rng(0)
        scorer = MoGScorer()
        scores = [
            scorer.score(float(np.mod(1.0 + rng.normal(0, 0.1), TWO_PI)))
            for _ in range(300)
        ]
        finite = [s for s in scores[-50:] if s != UNSCORED]
        assert finite and np.median(finite) < 3.0

    def test_high_score_on_jump(self):
        rng = np.random.default_rng(0)
        scorer = MoGScorer()
        for _ in range(300):
            scorer.score(float(np.mod(1.0 + rng.normal(0, 0.1), TWO_PI)))
        assert scorer.score(3.5) > 3.0

    def test_decide_thresholds_score(self):
        scorer = DifferencingScorer()
        scorer.score(0.0)
        assert scorer.decide(1.0, threshold=0.5)


class TestFactory:
    def test_kinds_and_signals(self):
        assert isinstance(make_scorer("mog", "phase"), MoGScorer)
        assert isinstance(
            make_scorer("differencing", "rss"), DifferencingScorer
        )

    def test_rss_scorer_is_linear(self):
        scorer = make_scorer("differencing", "rss")
        scorer.score(-50.0)
        assert scorer.score(-50.0 + TWO_PI) == pytest.approx(TWO_PI)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_scorer("kalman", "phase")

    def test_unknown_signal(self):
        with pytest.raises(ValueError):
            make_scorer("mog", "doppler")


class TestFusion:
    def test_unscored_until_any_model_matures(self):
        from repro.core.detectors import FusionScorer

        scorer = FusionScorer()
        assert scorer.score((1.0, -50.0)) == UNSCORED

    def test_stationary_low_moving_high(self):
        from repro.core.detectors import FusionScorer

        rng = np.random.default_rng(7)
        scorer = FusionScorer()
        for _ in range(300):
            scorer.score(
                (
                    float(np.mod(1.0 + rng.normal(0, 0.1), TWO_PI)),
                    float(-52.0 + rng.normal(0, 0.4)),
                )
            )
        quiet = scorer.score((1.0, -52.0))
        loud = scorer.score((3.0, -45.0))
        assert quiet < 3.0 < loud

    def test_rss_only_evidence_counts(self):
        """A re-orientation changes RSS but not phase: fusion still fires."""
        from repro.core.detectors import FusionScorer

        rng = np.random.default_rng(8)
        scorer = FusionScorer()
        for _ in range(300):
            scorer.score(
                (
                    float(np.mod(1.0 + rng.normal(0, 0.1), TWO_PI)),
                    float(-52.0 + rng.normal(0, 0.4)),
                )
            )
        assert scorer.score((1.0, -40.0)) > 3.0

    def test_factory(self):
        from repro.core.detectors import FusionScorer

        assert isinstance(make_scorer("fusion"), FusionScorer)
