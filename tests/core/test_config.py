"""Tests for Tagwatch configuration and the concerned-tags file."""

import pytest

from repro.core.config import (
    TagwatchConfig,
    load_concerned_epcs,
    save_concerned_epcs,
)
from repro.gen2.epc import EPC, random_epc_population


class TestValidation:
    def test_defaults_match_paper(self):
        config = TagwatchConfig()
        assert config.phase2_duration_s == 5.0
        assert config.fallback_fraction == 0.2
        assert config.gmm.max_modes == 8

    def test_phase2_positive(self):
        with pytest.raises(ValueError):
            TagwatchConfig(phase2_duration_s=0.0)

    def test_fallback_fraction_bounds(self):
        with pytest.raises(ValueError):
            TagwatchConfig(fallback_fraction=0.0)
        TagwatchConfig(fallback_fraction=1.0)

    def test_selection_method_checked(self):
        with pytest.raises(ValueError):
            TagwatchConfig(selection_method="optimal")

    def test_vote_rule_checked(self):
        with pytest.raises(ValueError):
            TagwatchConfig(vote_rule="unanimous")


class TestConcerned:
    def test_with_concerned_accepts_epcs_and_ints(self):
        epcs = random_epc_population(2, rng=1)
        config = TagwatchConfig().with_concerned([epcs[0], epcs[1].value])
        assert epcs[0].value in config.concerned_epc_values
        assert epcs[1].value in config.concerned_epc_values

    def test_with_concerned_preserves_other_fields(self):
        base = TagwatchConfig(phase2_duration_s=2.0, selection_method="naive")
        extended = base.with_concerned([1])
        assert extended.phase2_duration_s == 2.0
        assert extended.selection_method == "naive"

    def test_file_round_trip(self, tmp_path):
        epcs = random_epc_population(3, rng=2)
        path = tmp_path / "concerned.conf"
        save_concerned_epcs(path, epcs)
        loaded = load_concerned_epcs(path)
        assert loaded == {e.value for e in epcs}

    def test_file_supports_comments_and_binary(self, tmp_path):
        path = tmp_path / "concerned.conf"
        path.write_text(
            "# pinned tags\n"
            "0b1010  # binary form\n"
            "\n"
            "ff\n"
        )
        loaded = load_concerned_epcs(path)
        assert loaded == {0b1010, 0xFF}

    def test_file_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "concerned.conf"
        path.write_text("zz-not-hex\n")
        with pytest.raises(ValueError, match="1"):
            load_concerned_epcs(path)
