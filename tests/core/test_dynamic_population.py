"""Integration tests: tags entering and leaving a live deployment.

Section 4.3 ("How to deal with reading exceptions?"): tags may come in, go
out or be temporarily blocked at any time.  Models are created on first
sight and dropped after a period of absence.
"""

import numpy as np
import pytest

from repro.core import Tagwatch, TagwatchConfig
from repro.gen2.epc import random_epc_population
from repro.radio.constants import single_channel
from repro.reader import LLRPClient, SimReader
from repro.util.rng import RngStream
from repro.world import Antenna, Scene, Stationary, TagInstance, TurntablePath


def build_dynamic_scene(seed=41, newcomer_enter=16.0, leaver_exit=18.0):
    streams = RngStream(seed)
    epcs = random_epc_population(8, rng=streams.child("epcs"))
    tags = []
    # Index 0: mobile; 1..5 permanent stationary; 6 leaves; 7 arrives late.
    tags.append(
        TagInstance(
            epc=epcs[0],
            trajectory=TurntablePath((0.0, 1.5, 0.8), 0.25, 3.0),
        )
    )
    for i in range(1, 6):
        tags.append(
            TagInstance(
                epc=epcs[i], trajectory=Stationary((0.3 * i, 2.0, 0.8))
            )
        )
    tags.append(
        TagInstance(
            epc=epcs[6],
            trajectory=Stationary((1.0, 2.5, 0.8)),
            exit_time=leaver_exit,
        )
    )
    tags.append(
        TagInstance(
            epc=epcs[7],
            trajectory=Stationary((1.5, 2.5, 0.8)),
            enter_time=newcomer_enter,
        )
    )
    scene = Scene(
        [Antenna((-3, 0, 1.5)), Antenna((3, 0, 1.5))],
        tags,
        channel_plan=single_channel(),
        seed=streams.child_seed("scene"),
    )
    return scene, epcs


@pytest.fixture(scope="module")
def run():
    scene, epcs = build_dynamic_scene()
    client = LLRPClient(SimReader(scene, seed=42))
    client.connect()
    tagwatch = Tagwatch(
        client,
        TagwatchConfig(phase2_duration_s=0.8, expire_after_s=6.0),
    )
    tagwatch.warm_up(14.0)
    results = tagwatch.run(14)
    return tagwatch, results, epcs


class TestNewcomer:
    def test_newcomer_seen_after_entry(self, run):
        tagwatch, results, epcs = run
        newcomer = epcs[7].value
        seen_at = [
            r.index for r in results if newcomer in r.assessments
        ]
        assert seen_at  # it was picked up by a later Phase I

    def test_newcomer_initially_treated_as_moving(self, run):
        """A fresh tag has no immobility model: it must be scheduled."""
        tagwatch, results, epcs = run
        newcomer = epcs[7].value
        first = next(r for r in results if newcomer in r.assessments)
        assert first.assessments[newcomer].moving

    def test_newcomer_eventually_stationary(self, run):
        tagwatch, results, epcs = run
        newcomer = epcs[7].value
        verdicts = [
            r.assessments[newcomer].moving
            for r in results
            if newcomer in r.assessments
        ]
        assert verdicts[-1] is False

    def test_newcomer_accumulates_history(self, run):
        tagwatch, _, epcs = run
        assert tagwatch.history.count(epcs[7].value) > 10


class TestLeaver:
    def test_leaver_models_expired(self, run):
        tagwatch, results, epcs = run
        leaver = epcs[6].value
        assert leaver not in tagwatch.assessor.known_epc_values()

    def test_leaver_absent_from_late_assessments(self, run):
        _, results, epcs = run
        leaver = epcs[6].value
        assert leaver not in results[-1].assessments


class TestMobileThroughout:
    def test_mobile_tag_remains_targeted(self, run):
        tagwatch, results, epcs = run
        mobile = epcs[0].value
        late = results[-4:]
        assert all(mobile in r.target_epc_values for r in late)
