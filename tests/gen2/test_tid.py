"""Tests for TID-bank contents and manufacturer-targeted Select."""

import pytest

from repro.gen2.epc import EPC, MemoryBank, TagMemory, random_epc_population
from repro.gen2.select import apply_selects, matches
from repro.gen2.tid import (
    MDID_ALIEN,
    MDID_IMPINJ,
    decode_mdid,
    make_tid,
    mixed_vendor_memories,
    select_manufacturer,
    tagged_memory,
)
from repro.radio.constants import single_channel
from repro.reader import SimReader
from repro.world.motion import Stationary
from repro.world.scene import Antenna, Scene, TagInstance


class TestTidLayout:
    def test_class_identifier(self):
        tid = make_tid(MDID_ALIEN, 0x412, serial=7)
        assert tid.bit_slice(0, 8) == 0xE2

    def test_decode_mdid(self):
        tid = make_tid(MDID_IMPINJ, 0x10C)
        assert decode_mdid(tid) == MDID_IMPINJ

    def test_decode_rejects_non_tid(self):
        with pytest.raises(ValueError):
            decode_mdid(EPC(0, 64))

    def test_field_bounds(self):
        with pytest.raises(ValueError):
            make_tid(1 << 12, 0)
        with pytest.raises(ValueError):
            make_tid(0, 1 << 12)
        with pytest.raises(ValueError):
            make_tid(0, 0, serial=1 << 32)

    def test_select_manufacturer_bounds(self):
        with pytest.raises(ValueError):
            select_manufacturer(1 << 12)


class TestManufacturerSelect:
    def test_matches_only_the_vendor(self):
        epcs = random_epc_population(2, rng=1)
        alien = tagged_memory(epcs[0], mdid=MDID_ALIEN)
        impinj = tagged_memory(epcs[1], mdid=MDID_IMPINJ)
        select = select_manufacturer(MDID_ALIEN)
        assert matches(select, alien)
        assert not matches(select, impinj)

    def test_bare_epc_has_zero_tid(self):
        """Bare EPCs keep the old semantics: TID bank defaults to zeros."""
        epcs = random_epc_population(1, rng=1)
        assert not matches(select_manufacturer(MDID_ALIEN), epcs[0])

    def test_apply_selects_with_memories(self):
        epcs = random_epc_population(4, rng=2)
        memories = [
            tagged_memory(epcs[0], mdid=MDID_ALIEN),
            tagged_memory(epcs[1], mdid=MDID_ALIEN),
            tagged_memory(epcs[2], mdid=MDID_IMPINJ),
            tagged_memory(epcs[3], mdid=MDID_IMPINJ),
        ]
        flags = apply_selects([select_manufacturer(MDID_IMPINJ)], memories)
        assert flags == [False, False, True, True]

    def test_mixed_vendor_generator(self):
        epcs = random_epc_population(30, rng=3)
        memories = mixed_vendor_memories(epcs, rng=4)
        mdids = {decode_mdid(m.tid) for m in memories}
        assert mdids == {MDID_ALIEN, MDID_IMPINJ}

    def test_memory_epc_consistency_enforced(self):
        epcs = random_epc_population(2, rng=5)
        with pytest.raises(ValueError):
            TagInstance(
                epc=epcs[0],
                trajectory=Stationary((0, 1, 0.8)),
                memory=tagged_memory(epcs[1]),
            )


class TestVendorFilteredInventory:
    def test_reader_reads_only_selected_vendor(self):
        epcs = random_epc_population(6, rng=6)
        tags = []
        for i, epc in enumerate(epcs):
            mdid = MDID_ALIEN if i < 3 else MDID_IMPINJ
            tags.append(
                TagInstance(
                    epc=epc,
                    trajectory=Stationary((0.3 * i, 1.2, 0.8)),
                    memory=tagged_memory(epc, mdid=mdid, serial=i),
                )
            )
        scene = Scene(
            [Antenna((0, 0, 1.5))], tags,
            channel_plan=single_channel(), seed=7,
        )
        reader = SimReader(scene, seed=8)
        result = reader.inventory_round(
            0, selects=[select_manufacturer(MDID_ALIEN)]
        )
        read_values = {obs.epc.value for obs in result.observations}
        assert read_values == {e.value for e in epcs[:3]}
