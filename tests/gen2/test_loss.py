"""Tests for link-level read-loss injection."""

import numpy as np
import pytest

from repro.gen2.aloha import QAdaptive
from repro.gen2.inventory import InventoryEngine
from repro.gen2.timing import R420_PROFILE


def engine(loss, seed=1):
    return InventoryEngine(
        R420_PROFILE,
        lambda: QAdaptive(initial_q=4),
        rng=seed,
        read_loss_probability=loss,
    )


class TestReadLoss:
    def test_validation(self):
        with pytest.raises(ValueError):
            engine(1.0)
        with pytest.raises(ValueError):
            engine(-0.1)

    def test_all_tags_still_read_eventually(self):
        log = engine(0.4).run_round(range(25))
        assert sorted(r.tag_index for r in log.reads) == list(range(25))

    def test_losses_counted(self):
        log = engine(0.4).run_round(range(25))
        assert log.n_lost > 0

    def test_loss_rate_near_parameter(self):
        logs = [engine(0.3, seed=s).run_round(range(20)) for s in range(8)]
        lost = sum(l.n_lost for l in logs)
        singles = sum(l.n_single for l in logs)
        assert lost / singles == pytest.approx(0.3, abs=0.08)

    def test_loss_slows_rounds(self):
        clean = np.mean(
            [engine(0.0, seed=s).run_round(range(20)).duration_s for s in range(6)]
        )
        lossy = np.mean(
            [engine(0.5, seed=s).run_round(range(20)).duration_s for s in range(6)]
        )
        assert lossy > clean

    def test_zero_loss_identical_to_default(self):
        a = engine(0.0, seed=9).run_round(range(10))
        b = InventoryEngine(
            R420_PROFILE, lambda: QAdaptive(initial_q=4), rng=9
        ).run_round(range(10))
        assert [r.tag_index for r in a.reads] == [r.tag_index for r in b.reads]


class TestTagwatchUnderLoss:
    def test_middleware_survives_lossy_link(self):
        """Tagwatch keeps working on a 20%-loss link: detection latency
        grows but the loop never wedges."""
        from repro.core import Tagwatch, TagwatchConfig
        from repro.experiments.harness import build_lab
        from repro.reader import LLRPClient, SimReader

        setup = build_lab(n_tags=10, n_mobile=1, seed=33, n_antennas=2)
        reader = SimReader(
            setup.scene, seed=34, read_loss_probability=0.2
        )
        client = LLRPClient(reader)
        client.connect()
        tagwatch = Tagwatch(client, TagwatchConfig(phase2_duration_s=0.6))
        tagwatch.warm_up(12.0)
        results = tagwatch.run(3)
        assert results[-1].n_tags_seen == 10
        mobile = setup.mobile_epc_values
        assert mobile <= results[-1].target_epc_values
