"""Tests for the tag-side protocol state machine."""

import pytest

from repro.gen2.commands import Ack, Query, QueryAdjust, QueryRep
from repro.gen2.epc import EPC
from repro.gen2.select import BitMask
from repro.gen2.tag import TagProtocolState, TagState


def make_tag(bits="1010", seed=1):
    return TagProtocolState(EPC.from_bits(bits), rng=seed)


class TestSelect:
    def test_matching_select_asserts_sl(self):
        tag = make_tag()
        tag.on_select(BitMask.from_bits("10", 0).to_select())
        assert tag.sl

    def test_non_matching_select_deasserts_sl(self):
        tag = make_tag()
        tag.sl = True
        tag.on_select(BitMask.from_bits("01", 0).to_select())
        assert not tag.sl


class TestInventoryFlow:
    def test_full_read_handshake(self):
        tag = make_tag()
        tag.on_select(BitMask(0, 0, 0).to_select())
        rn16 = tag.on_query(Query(q=0))  # frame of 1 slot: replies at once
        assert rn16 is not None
        epc = tag.on_ack(Ack(rn16))
        assert epc == tag.epc
        assert tag.state == TagState.ACKNOWLEDGED

    def test_wrong_rn16_not_acknowledged(self):
        tag = make_tag()
        tag.on_select(BitMask(0, 0, 0).to_select())
        rn16 = tag.on_query(Query(q=0))
        assert tag.on_ack(Ack((rn16 + 1) % 2**16)) is None

    def test_unselected_tag_stays_silent(self):
        tag = make_tag()
        assert tag.on_query(Query(q=0)) is None

    def test_query_rep_counts_down(self):
        tag = make_tag(seed=3)
        tag.on_select(BitMask(0, 0, 0).to_select())
        reply = tag.on_query(Query(q=3))
        hops = 0
        while reply is None and hops < 10:
            reply = tag.on_query_rep(QueryRep())
            hops += 1
        assert reply is not None

    def test_collided_tag_backs_off(self):
        tag = make_tag()
        tag.on_select(BitMask(0, 0, 0).to_select())
        tag.on_query(Query(q=0))
        assert tag.state == TagState.REPLY
        # No ACK arrives; the next QueryRep sends it back to arbitrate.
        assert tag.on_query_rep(QueryRep()) is None
        assert tag.state == TagState.ARBITRATE
        assert tag.slot_counter == (1 << 15) - 1

    def test_query_adjust_redraws(self):
        tag = make_tag()
        tag.on_select(BitMask(0, 0, 0).to_select())
        tag.on_query(Query(q=4))
        result = tag.on_query_adjust(QueryAdjust(q=0))
        assert result is not None  # frame of 1 slot: must reply

    def test_inventoried_flag_flips_after_ack(self):
        tag = make_tag()
        tag.on_select(BitMask(0, 0, 0).to_select())
        rn16 = tag.on_query(Query(q=0))
        tag.on_ack(Ack(rn16))
        # Flag flipped to B: tag no longer participates in an A-targeted round.
        assert not tag.participates(Query(q=0))

    def test_reset_round_restores(self):
        tag = make_tag()
        tag.on_select(BitMask(0, 0, 0).to_select())
        rn16 = tag.on_query(Query(q=0))
        tag.on_ack(Ack(rn16))
        tag.reset_round()
        assert tag.participates(Query(q=0))
