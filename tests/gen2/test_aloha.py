"""Tests for frame-length strategies."""

import pytest

from repro.gen2.aloha import (
    FixedQ,
    IdealDFSA,
    QAdaptive,
    SlotOutcome,
    make_strategy,
)


class TestFixedQ:
    def test_constant_frame(self):
        s = FixedQ(3)
        assert s.start_round(100) == 8
        assert s.on_slot(SlotOutcome.COLLISION) is None
        assert s.next_frame(50) == 8

    def test_range_check(self):
        with pytest.raises(ValueError):
            FixedQ(16)


class TestIdealDFSA:
    def test_frame_equals_population(self):
        s = IdealDFSA()
        assert s.start_round(40) == 40
        assert s.next_frame(39) == 39

    def test_restart_on_success(self):
        s = IdealDFSA()
        s.start_round(10)
        assert s.on_slot(SlotOutcome.SINGLE) == -1

    def test_no_restart_on_empty(self):
        s = IdealDFSA()
        s.start_round(10)
        assert s.on_slot(SlotOutcome.EMPTY) is None

    def test_minimum_frame_one(self):
        assert IdealDFSA().start_round(0) == 1


class TestQAdaptive:
    def test_collisions_grow_q(self):
        s = QAdaptive(initial_q=4, c=0.5)
        s.start_round(10)
        assert s.on_slot(SlotOutcome.COLLISION) is None  # 4.5 rounds to 4
        assert s.on_slot(SlotOutcome.COLLISION) == 32  # 5.0 -> Q=5

    def test_empties_shrink_q(self):
        s = QAdaptive(initial_q=4, c=0.5)
        s.start_round(10)
        s.on_slot(SlotOutcome.EMPTY)
        assert s.on_slot(SlotOutcome.EMPTY) == 8  # 3.0 -> Q=3

    def test_success_neutral(self):
        s = QAdaptive(initial_q=4, c=0.5)
        s.start_round(10)
        assert s.on_slot(SlotOutcome.SINGLE) is None

    def test_clamps_at_zero(self):
        s = QAdaptive(initial_q=0, c=0.5)
        s.start_round(1)
        for _ in range(5):
            s.on_slot(SlotOutcome.EMPTY)
        assert s.qfp == 0.0

    def test_clamps_at_fifteen(self):
        s = QAdaptive(initial_q=15, c=0.5)
        s.start_round(10)
        for _ in range(5):
            s.on_slot(SlotOutcome.COLLISION)
        assert s.qfp == 15.0

    def test_c_range_enforced(self):
        with pytest.raises(ValueError):
            QAdaptive(c=0.6)

    def test_start_round_resets(self):
        s = QAdaptive(initial_q=4, c=0.5)
        s.start_round(10)
        s.on_slot(SlotOutcome.COLLISION)
        s.start_round(10)
        assert s.qfp == 4.0


class TestFactory:
    def test_names(self):
        assert isinstance(make_strategy("fixed", q=3), FixedQ)
        assert isinstance(make_strategy("dfsa"), IdealDFSA)
        assert isinstance(make_strategy("q-adaptive"), QAdaptive)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_strategy("tree")
