"""Tests for the slot-accurate inventory engine."""

import numpy as np
import pytest

from repro.gen2.aloha import FixedQ, IdealDFSA, QAdaptive
from repro.gen2.inventory import InventoryEngine, InventoryLog
from repro.gen2.timing import R420_PROFILE


def engine(with_replacement=True, seed=1, strategy=None):
    factory = strategy or (lambda: QAdaptive(initial_q=4))
    return InventoryEngine(
        R420_PROFILE, factory, rng=seed, with_replacement=with_replacement
    )


class TestRunRound:
    def test_reads_every_tag_once(self):
        log = engine().run_round(range(20))
        assert sorted(r.tag_index for r in log.reads) == list(range(20))

    def test_empty_population(self):
        log = engine().run_round([])
        assert log.reads == []
        assert log.n_empty == 1
        assert log.duration_s > R420_PROFILE.startup_cost

    def test_duration_includes_startup(self):
        log = engine().run_round([0])
        assert log.duration_s >= R420_PROFILE.startup_cost

    def test_read_times_increase(self):
        log = engine().run_round(range(10))
        times = [r.time_s for r in log.reads]
        assert times == sorted(times)

    def test_deterministic_with_seed(self):
        a = engine(seed=7).run_round(range(15))
        b = engine(seed=7).run_round(range(15))
        assert [r.tag_index for r in a.reads] == [r.tag_index for r in b.reads]
        assert a.duration_s == b.duration_s

    def test_max_duration_truncates(self):
        log = engine().run_round(range(50), max_duration_s=0.021)
        assert log.truncated
        assert len(log.reads) < 50

    def test_on_read_callback(self):
        seen = []
        engine().run_round(range(5), on_read=seen.append)
        assert len(seen) == 5

    def test_duplicates_counted_in_s0_mode(self):
        log = engine(with_replacement=True, seed=3).run_round(range(30))
        assert log.n_duplicate > 0

    def test_no_duplicates_without_replacement(self):
        log = engine(with_replacement=False, seed=3).run_round(range(30))
        assert log.n_duplicate == 0


class TestSlotCounts:
    def test_s1_mode_near_ne(self):
        """Without replacement, ideal DFSA needs ~n*e slots."""
        n = 40
        eng = engine(with_replacement=False, seed=5, strategy=IdealDFSA)
        slots = np.mean([eng.run_round(range(n)).n_slots for _ in range(10)])
        assert slots == pytest.approx(n * np.e, rel=0.25)

    def test_s0_mode_near_coupon_collector(self):
        """With replacement, ideal DFSA needs ~n*e*H_n slots (Eqn 4)."""
        n = 40
        h_n = sum(1.0 / i for i in range(1, n + 1))
        eng = engine(with_replacement=True, seed=5, strategy=IdealDFSA)
        slots = np.mean([eng.run_round(range(n)).n_slots for _ in range(10)])
        assert slots == pytest.approx(n * np.e * h_n, rel=0.25)

    def test_fixed_q_too_small_hits_cap(self):
        """A tiny fixed frame over many tags collides forever: the slot cap
        must keep the engine from hanging."""
        eng = engine(strategy=lambda: FixedQ(0), with_replacement=False)
        eng.MAX_SLOTS_PER_ROUND = 500
        log = eng.run_round(range(10))
        assert log.truncated


class TestDurationScaling:
    def test_more_tags_take_longer(self):
        eng = engine(seed=9)
        d_small = np.mean([eng.run_round(range(5)).duration_s for _ in range(5)])
        d_large = np.mean([eng.run_round(range(40)).duration_s for _ in range(5)])
        assert d_large > 2 * d_small


class TestRunForDuration:
    def test_time_budget_respected(self):
        # A round whose Select already went out is committed, so the budget
        # may overshoot by at most one start-up plus one slot.
        log = engine().run_for_duration(range(10), 0.0, 0.5)
        slack = R420_PROFILE.startup_cost + R420_PROFILE.success_slot_duration
        assert log.end_time_s <= 0.5 + slack

    def test_multiple_rounds_merged(self):
        log = engine().run_for_duration(range(5), 0.0, 1.0)
        assert log.n_rounds > 1
        per_tag = {}
        for read in log.reads:
            per_tag[read.tag_index] = per_tag.get(read.tag_index, 0) + 1
        assert all(count > 1 for count in per_tag.values())

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            engine().run_for_duration(range(5), 0.0, 0.0)


class TestInventoryLogMerge:
    def test_merge_accumulates(self):
        a = InventoryLog(n_empty=1, n_single=2, n_rounds=1, end_time_s=1.0)
        b = InventoryLog(n_empty=3, n_collision=1, n_rounds=1, end_time_s=2.0)
        a.merge(b)
        assert a.n_empty == 4
        assert a.n_slots == 7
        assert a.end_time_s == 2.0
