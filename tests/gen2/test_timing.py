"""Tests for the Gen2 link timing profile."""

import pytest

from repro.gen2.timing import R420_PROFILE, LinkTiming, describe


class TestDurations:
    def test_slot_ordering(self):
        t = R420_PROFILE
        assert t.empty_slot_duration < t.collision_slot_duration
        assert t.collision_slot_duration < t.success_slot_duration

    def test_startup_cost_near_paper(self):
        # The paper fits tau_0 = 19 ms on the R420.
        assert 0.015 < R420_PROFILE.startup_cost < 0.025

    def test_mean_slot_sub_millisecond(self):
        # The paper fits tau_bar = 0.18 ms; the derived profile is close.
        assert 0.0001 < R420_PROFILE.mean_slot_duration() < 0.0005

    def test_mean_slot_probability_check(self):
        with pytest.raises(ValueError):
            R420_PROFILE.mean_slot_duration(0.5, 0.5, 0.5)

    def test_select_longer_than_query(self):
        assert R420_PROFILE.select_duration > R420_PROFILE.query_duration

    def test_all_durations_positive(self):
        t = R420_PROFILE
        for value in (
            t.query_duration,
            t.query_rep_duration,
            t.query_adjust_duration,
            t.ack_duration,
            t.select_duration,
            t.rn16_duration,
            t.epc_reply_duration,
        ):
            assert value > 0

    def test_custom_profile_scales(self):
        slow = LinkTiming(blf_hz=160e3)
        assert slow.rn16_duration > R420_PROFILE.rn16_duration

    def test_describe_mentions_tau(self):
        text = describe(R420_PROFILE)
        assert "tau_0" in text and "tau_bar" in text
