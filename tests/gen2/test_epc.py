"""Tests for EPC encoding and memory banks."""

import pytest
from hypothesis import given, strategies as st

from repro.gen2.epc import (
    EPC,
    MemoryBank,
    TagMemory,
    common_prefix_length,
    random_epc_population,
    sequential_epc_population,
)


class TestConstruction:
    def test_value_must_fit(self):
        with pytest.raises(ValueError):
            EPC(4, length=2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EPC(-1, length=8)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            EPC(0, length=0)

    def test_from_bits(self):
        epc = EPC.from_bits("001110")
        assert epc.value == 0b001110
        assert epc.length == 6

    def test_from_bits_rejects_garbage(self):
        with pytest.raises(ValueError):
            EPC.from_bits("012")

    def test_from_hex(self):
        epc = EPC.from_hex("0xff")
        assert epc.value == 255
        assert epc.length == 8

    def test_from_hex_empty_raises(self):
        with pytest.raises(ValueError):
            EPC.from_hex("")


class TestBitAddressing:
    """Gen2 convention: bit 0 is the MSB (paper Fig 9)."""

    def test_bit_zero_is_msb(self):
        epc = EPC.from_bits("100000")
        assert epc.bit(0) == 1
        assert epc.bit(5) == 0

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            EPC.from_bits("10").bit(2)

    def test_bit_slice_paper_example(self):
        # Fig 9(a): tag 001110 has bits 4..5 == "10".
        epc = EPC.from_bits("001110")
        assert epc.bit_slice(4, 2) == 0b10

    def test_bit_slice_full(self):
        epc = EPC.from_bits("1011")
        assert epc.bit_slice(0, 4) == 0b1011

    def test_bit_slice_past_end_raises(self):
        with pytest.raises(IndexError):
            EPC.from_bits("1011").bit_slice(3, 2)

    def test_bit_slice_zero_length_raises(self):
        with pytest.raises(ValueError):
            EPC.from_bits("1011").bit_slice(0, 0)


class TestFormatting:
    def test_bits_round_trip(self):
        epc = EPC.from_bits("010110")
        assert epc.to_bits() == "010110"

    def test_hex_padding(self):
        assert EPC(1, 96).to_hex() == "0" * 23 + "1"

    @given(st.integers(min_value=0, max_value=2**96 - 1))
    def test_bits_round_trip_property(self, value):
        epc = EPC(value, 96)
        assert EPC.from_bits(epc.to_bits()) == epc


class TestPopulations:
    def test_random_population_unique(self):
        epcs = random_epc_population(50, rng=1)
        assert len({e.value for e in epcs}) == 50

    def test_random_population_reproducible(self):
        a = random_epc_population(5, rng=2)
        b = random_epc_population(5, rng=2)
        assert [e.value for e in a] == [e.value for e in b]

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            random_epc_population(-1)

    def test_sequential(self):
        epcs = sequential_epc_population(3, start=5)
        assert [e.value for e in epcs] == [5, 6, 7]


class TestCommonPrefix:
    def test_identical(self):
        epcs = [EPC.from_bits("1010"), EPC.from_bits("1010")]
        assert common_prefix_length(epcs) == 4

    def test_divergent_at_first_bit(self):
        epcs = [EPC.from_bits("1010"), EPC.from_bits("0010")]
        assert common_prefix_length(epcs) == 0

    def test_partial(self):
        epcs = [EPC.from_bits("1010"), EPC.from_bits("1001")]
        assert common_prefix_length(epcs) == 2

    def test_empty(self):
        assert common_prefix_length([]) == 0


class TestTagMemory:
    def test_bank_selection(self):
        memory = TagMemory(epc=EPC.from_bits("1010"))
        assert memory.bank(MemoryBank.EPC).value == 0b1010
        assert memory.bank(MemoryBank.TID).value == 0
        assert memory.bank(MemoryBank.USER).value == 0
        assert memory.bank(MemoryBank.RESERVED).value == 0
