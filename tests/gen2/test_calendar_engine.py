"""Differential tests: calendar engine vs fast vs reference.

The event-calendar kernel's contract is the same as the fast engine's —
*bit-for-bit equivalence* with the sequential reference walk: same reads,
same timing, same counters, same RNG consumption, for every strategy,
session mode, fault plan and deadline.  These tests drive all three engines
over that space and compare everything observable, both at the engine level
(raw :class:`InventoryLog`) and at the reader level (post-fault report
streams under a :class:`FaultPlan`).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultPlan, FaultyReader
from repro.gen2.aloha import FixedQ, QAdaptive
from repro.gen2.epc import EPC
from repro.gen2.inventory import InventoryEngine, InventoryLog
from repro.gen2.timing import R420_PROFILE
from repro.world.motion import CircularPath, Stationary
from repro.world.scene import Antenna, Scene, TagInstance

ENGINES = ("calendar", "fast", "reference")


def _factory(kind, q):
    if kind == "qadaptive":
        return lambda: QAdaptive(initial_q=q)
    return lambda: FixedQ(q)


def _run_rounds(engine_name, kind, q, n_tags, seed, with_replacement,
                loss, deadline, rounds):
    engine = InventoryEngine(
        R420_PROFILE,
        _factory(kind, q),
        rng=seed,
        with_replacement=with_replacement,
        read_loss_probability=loss,
        engine=engine_name,
    )
    logs = [
        engine.run_round(range(n_tags), max_duration_s=deadline)
        for _ in range(rounds)
    ]
    return engine, logs


def _log_signature(log):
    return (
        list(log.reads),
        log.n_empty,
        log.n_single,
        log.n_collision,
        log.n_duplicate,
        log.n_lost,
        log.n_rounds,
        log.n_adjusts,
        log.start_time_s,
        log.end_time_s,
        log.truncated,
    )


@settings(max_examples=60, deadline=None)
@given(
    kind=st.sampled_from(["qadaptive", "fixedq"]),
    q=st.integers(min_value=0, max_value=7),
    n_tags=st.sampled_from([0, 1, 3, 17, 60]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    with_replacement=st.booleans(),  # S0 vs S1 session models
    loss=st.sampled_from([0.0, 0.1, 0.5]),
    deadline=st.sampled_from([None, 0.02]),
)
def test_calendar_matches_fast_and_reference(
    kind, q, n_tags, seed, with_replacement, loss, deadline
):
    original_cap = InventoryEngine.MAX_SLOTS_PER_ROUND
    # A low cap makes the truncation path reachable (FixedQ(0) over many
    # tags collides forever) without hypothesis-hostile runtimes.
    InventoryEngine.MAX_SLOTS_PER_ROUND = 1500
    probe_stream = loss > 0.0
    try:
        signatures = {}
        for name in ENGINES:
            engine, logs = _run_rounds(
                name, kind, q, n_tags, seed, with_replacement, loss,
                deadline, rounds=2,
            )
            sig = [_log_signature(log) for log in logs]
            # The stream position must match too; only meaningful for the
            # fast engine, whose lossy helpers draw exactly on demand.  The
            # calendar kernel bulk-prefetches raw words on refill (like the
            # loss-free lane buffer), so its generator legitimately sits
            # ahead — its *consumed* stream is pinned by the log equality.
            if probe_stream and name != "calendar":
                sig.append(tuple(engine.rng.random(size=4).tolist()))
            signatures[name] = sig
    finally:
        InventoryEngine.MAX_SLOTS_PER_ROUND = original_cap
    assert (
        signatures["calendar"] == signatures["reference"][: len(signatures["calendar"])]
    )
    assert signatures["fast"] == signatures["reference"]


@settings(max_examples=30, deadline=None)
@given(
    kind=st.sampled_from(["qadaptive", "fixedq"]),
    q=st.integers(min_value=1, max_value=6),
    n_tags=st.sampled_from([1, 5, 23]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    with_replacement=st.booleans(),
    rounds=st.integers(min_value=1, max_value=4),
)
def test_merged_logs_are_engine_invariant(
    kind, q, n_tags, seed, with_replacement, rounds
):
    """Merging per-round logs commutes with the engine choice.

    The property the rest of the stack relies on: consumers that fold
    per-round logs into a running total (``run_duration``, the site
    simulation's per-reader totals) see one identical merged log whichever
    engine produced the rounds.
    """
    merged = {}
    for name in ENGINES:
        _, logs = _run_rounds(
            name, kind, q, n_tags, seed, with_replacement,
            loss=0.0, deadline=None, rounds=rounds,
        )
        total = InventoryLog(
            start_time_s=logs[0].start_time_s,
            end_time_s=logs[0].start_time_s,
        )
        for log in logs:
            total.merge(log)
        merged[name] = _log_signature(total)
    assert merged["calendar"] == merged["reference"]
    assert merged["fast"] == merged["reference"]


# ----------------------------------------------------------------------
# Reader-level differential under fault plans
# ----------------------------------------------------------------------
FAULT_PLANS = {
    "none": FaultPlan.none(),
    "iid_loss": FaultPlan(report_loss=0.3),
    "burst": FaultPlan(burst_enter=0.2, burst_exit=0.5),
    "spikes_dupes": FaultPlan(
        phase_spike=0.2, phase_spike_std_rad=0.8, duplicate=0.2
    ),
    "delay_reorder": FaultPlan(delay=0.3, reorder=0.5),
}


def _scene(seed):
    tags = [
        TagInstance(EPC(i + 1, 96), Stationary((0.5 + 0.3 * i, 1.0, 0.0)))
        for i in range(6)
    ]
    tags.append(
        TagInstance(
            EPC(99, 96),
            CircularPath(center=(1.0, 1.0, 0.0), radius=0.4, speed=0.8),
        )
    )
    return Scene(
        antennas=[Antenna(position=(0.0, 0.0, 1.0), range_m=8.0)],
        tags=tags,
        seed=seed,
    )


def _reader_trace(engine_name, plan, seed):
    reader = FaultyReader(
        _scene(seed), plan, seed=seed, engine=engine_name
    )
    observations, log = reader.run_duration(0.4)
    return (
        [
            (o.epc.value, o.antenna_index, o.channel_index,
             o.time_s, o.phase_rad, o.rss_dbm)
            for o in observations
        ],
        _log_signature(log),
        reader.time_s,
    )


@pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
@pytest.mark.parametrize("seed", [0, 7])
def test_reader_reports_engine_invariant_under_faults(plan_name, seed):
    """The post-fault report stream is byte-identical across engines.

    Fault injection happens above the engine, so any engine divergence —
    a read at a different time, a different slot draw — would cascade into
    differently faulted reports; equality here pins the full pipeline.
    """
    plan = FAULT_PLANS[plan_name]
    traces = {
        name: _reader_trace(name, plan, seed) for name in ENGINES
    }
    assert traces["calendar"] == traces["reference"]
    assert traces["fast"] == traces["reference"]


def test_env_var_selects_calendar(monkeypatch):
    monkeypatch.delenv("REPRO_INVENTORY_ENGINE", raising=False)
    engine = InventoryEngine(R420_PROFILE, lambda: QAdaptive(initial_q=4))
    assert engine.engine == "calendar"
    monkeypatch.setenv("REPRO_INVENTORY_ENGINE", "fast")
    engine = InventoryEngine(R420_PROFILE, lambda: QAdaptive(initial_q=4))
    assert engine.engine == "fast"
