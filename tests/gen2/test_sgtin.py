"""Tests for SGTIN-96 encoding and warehouse populations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gen2.sgtin import (
    PARTITION_TABLE,
    ProductLine,
    Sgtin96,
    is_sgtin96,
    sku_prefix_mask_length,
    warehouse_population,
)
from repro.gen2.epc import EPC, common_prefix_length
from repro.gen2.select import BitMask


class TestEncodeDecode:
    def test_round_trip(self):
        identity = Sgtin96(
            filter_value=1,
            partition=5,
            company_prefix=614141,
            item_reference=812345,
            serial=6789,
        )
        assert Sgtin96.decode(identity.encode()) == identity

    def test_header_in_place(self):
        epc = Sgtin96(1, 5, 1, 2, 3).encode()
        assert epc.bit_slice(0, 8) == 0x30
        assert is_sgtin96(epc)

    def test_random_epc_is_not_sgtin(self):
        assert not is_sgtin96(EPC(0, 96))

    def test_decode_rejects_bad_header(self):
        with pytest.raises(ValueError):
            Sgtin96.decode(EPC(0, 96))

    def test_decode_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Sgtin96.decode(EPC(0, 64))

    def test_field_bounds(self):
        with pytest.raises(ValueError):
            Sgtin96(8, 5, 1, 2, 3)  # filter too big
        with pytest.raises(ValueError):
            Sgtin96(1, 7, 1, 2, 3)  # bad partition
        with pytest.raises(ValueError):
            Sgtin96(1, 5, 1 << 24, 2, 3)  # company prefix too big for p5
        with pytest.raises(ValueError):
            Sgtin96(1, 5, 1, 1 << 20, 3)  # item ref too big for p5
        with pytest.raises(ValueError):
            Sgtin96(1, 5, 1, 2, 1 << 38)  # serial too big

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=7),
        st.sampled_from(sorted(PARTITION_TABLE)),
        st.data(),
    )
    def test_round_trip_property(self, filter_value, partition, data):
        cp_bits, _, ir_bits, _ = PARTITION_TABLE[partition]
        identity = Sgtin96(
            filter_value=filter_value,
            partition=partition,
            company_prefix=data.draw(
                st.integers(min_value=0, max_value=(1 << cp_bits) - 1)
            ),
            item_reference=data.draw(
                st.integers(min_value=0, max_value=(1 << ir_bits) - 1)
            ),
            serial=data.draw(st.integers(min_value=0, max_value=(1 << 38) - 1)),
        )
        assert Sgtin96.decode(identity.encode()) == identity


class TestProductLine:
    def test_same_sku_shares_long_prefix(self):
        line = ProductLine(company_prefix=614141, item_reference=7)
        a, b = line.tag(1), line.tag(2**30)
        assert common_prefix_length([a, b]) >= sku_prefix_mask_length()

    def test_sku_mask_covers_all_serials(self):
        line = ProductLine(company_prefix=614141, item_reference=7)
        tags = [line.tag(s) for s in (0, 1, 2**37, 2**38 - 1)]
        prefix_len = sku_prefix_mask_length()
        mask = BitMask(tags[0].bit_slice(0, prefix_len), 0, prefix_len)
        assert all(mask.covers(t) for t in tags)

    def test_other_sku_not_covered(self):
        a = ProductLine(company_prefix=614141, item_reference=7)
        b = ProductLine(company_prefix=614141, item_reference=8)
        prefix_len = sku_prefix_mask_length()
        mask = BitMask(a.tag(0).bit_slice(0, prefix_len), 0, prefix_len)
        assert not mask.covers(b.tag(0))


class TestWarehousePopulation:
    def test_sizes(self):
        tags, lines = warehouse_population(
            50, n_companies=2, skus_per_company=3, rng=1
        )
        assert len(tags) == 50
        assert len(lines) == 6
        assert len({t.value for t in tags}) == 50

    def test_all_sgtin(self):
        tags, _ = warehouse_population(20, rng=2)
        assert all(is_sgtin96(t) for t in tags)

    def test_reproducible(self):
        a, _ = warehouse_population(10, rng=3)
        b, _ = warehouse_population(10, rng=3)
        assert [t.value for t in a] == [t.value for t in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            warehouse_population(0)
