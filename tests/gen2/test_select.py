"""Tests for bitmask semantics, including the paper's Fig 9 example."""

import pytest
from hypothesis import given, strategies as st

from repro.gen2.commands import SelectAction
from repro.gen2.epc import EPC
from repro.gen2.select import (
    BitMask,
    apply_selects,
    coverage,
    matches,
    union_selects,
)

# The four tags of Fig 9: three targets and one non-target.
TARGET_1 = EPC.from_bits("001110")
TARGET_2 = EPC.from_bits("010010")
TARGET_3 = EPC.from_bits("101100")
NON_TARGET = EPC.from_bits("110110")


class TestBitMaskCovers:
    def test_fig9a_s1_covers_targets_and_non_target(self):
        # S1(10_2, 4, 2) covers 0011[10] and 0100[10] but collaterally also
        # 1101[10] (the paper's "mistakenly covers" example).
        s1 = BitMask.from_bits("10", 4)
        assert s1.covers(TARGET_1)
        assert s1.covers(TARGET_2)
        assert s1.covers(NON_TARGET)
        assert not s1.covers(TARGET_3)

    def test_fig9b_optimal_selection_is_clean(self):
        # S1(11_2, 2, 2) and S2(01_2, 0, 2) cover the three targets with no
        # non-targets (Fig 9b).
        s1 = BitMask.from_bits("11", 2)
        s2 = BitMask.from_bits("01", 0)
        covered = {
            epc.value
            for epc in (TARGET_1, TARGET_2, TARGET_3, NON_TARGET)
            if s1.covers(epc) or s2.covers(epc)
        }
        assert covered == {TARGET_1.value, TARGET_2.value, TARGET_3.value}

    def test_zero_length_covers_all(self):
        assert BitMask(0, 0, 0).covers(TARGET_1)

    def test_mask_past_end_does_not_match(self):
        assert not BitMask(0b11, 5, 2).covers(TARGET_1)

    def test_full_epc_exact(self):
        mask = BitMask.full_epc(TARGET_1)
        assert mask.covers(TARGET_1)
        assert not mask.covers(TARGET_2)

    def test_invalid_mask_value(self):
        with pytest.raises(ValueError):
            BitMask(4, 0, 2)

    def test_zero_length_nonzero_mask(self):
        with pytest.raises(ValueError):
            BitMask(1, 0, 0)

    def test_str_matches_paper_notation(self):
        assert str(BitMask.from_bits("10", 5)) == "S(10_2, 5, 2)"


class TestMatches:
    def test_epc_bank(self):
        select = BitMask.from_bits("00", 0).to_select()
        assert matches(select, TARGET_1)
        assert not matches(select, TARGET_3)


class TestApplySelects:
    def test_no_selects_means_everyone(self):
        flags = apply_selects([], [TARGET_1, TARGET_2])
        assert flags == [True, True]

    def test_single_assert_deassert(self):
        select = BitMask.from_bits("10", 4).to_select()
        flags = apply_selects(
            [select], [TARGET_1, TARGET_2, TARGET_3, NON_TARGET]
        )
        assert flags == [True, True, False, True]

    def test_union_selects(self):
        selects = union_selects(
            [BitMask.from_bits("11", 2), BitMask.from_bits("01", 0)]
        )
        flags = apply_selects(
            selects, [TARGET_1, TARGET_2, TARGET_3, NON_TARGET]
        )
        assert flags == [True, True, True, False]

    def test_union_of_nothing(self):
        assert union_selects([]) == []

    def test_last_assert_deassert_wins(self):
        s1 = BitMask.from_bits("0", 0).to_select()  # covers 0.....
        s2 = BitMask.from_bits("1", 0).to_select()  # covers 1.....
        flags = apply_selects([s1, s2], [TARGET_1, TARGET_3])
        assert flags == [False, True]

    def test_nothing_deassert(self):
        keep = BitMask.from_bits("0", 0).to_select(
            action=SelectAction.NOTHING_DEASSERT
        )
        flags = apply_selects(
            [BitMask(0, 0, 0).to_select(), keep], [TARGET_1, TARGET_3]
        )
        assert flags == [True, False]


class TestCoverage:
    def test_indices(self):
        population = [TARGET_1, TARGET_2, TARGET_3, NON_TARGET]
        s1 = BitMask.from_bits("10", 4)
        assert coverage(s1, population) == (0, 1, 3)


@given(st.integers(min_value=0, max_value=2**24 - 1))
def test_full_epc_mask_is_exact(value):
    epc = EPC(value, 24)
    other = EPC((value + 1) % 2**24, 24)
    mask = BitMask.full_epc(epc)
    assert mask.covers(epc)
    assert not mask.covers(other)
