"""Tests for session-flag persistence (S0 vs S1 burst reading)."""

import numpy as np
import pytest

from repro.gen2.epc import random_epc_population
from repro.gen2.session import (
    PERSISTENCE_RANGES_S,
    Session,
    SessionedInventory,
    SessionFlagStore,
)
from repro.radio.constants import single_channel
from repro.reader import SimReader
from repro.world.motion import Stationary
from repro.world.scene import Antenna, Scene, TagInstance


def make_reader(n=6, seed=1):
    epcs = random_epc_population(n, rng=seed)
    tags = [
        TagInstance(epc=e, trajectory=Stationary((0.3 * i, 1.2, 0.8)))
        for i, e in enumerate(epcs)
    ]
    scene = Scene(
        [Antenna((0, 0, 1.5))], tags, channel_plan=single_channel(), seed=seed
    )
    return SimReader(scene, seed=seed + 1)


class TestFlagStore:
    def test_s0_never_persists(self):
        store = SessionFlagStore(session=Session.S0, rng_seed=1)
        store.mark_read(5, 10.0)
        assert store.participates(5, 10.0)

    def test_s1_persists_within_range(self):
        store = SessionFlagStore(session=Session.S1, rng_seed=1)
        persistence = store.persistence_of(5)
        lo, hi = PERSISTENCE_RANGES_S[Session.S1]
        assert lo <= persistence <= hi
        store.mark_read(5, 10.0)
        assert not store.participates(5, 10.0 + persistence / 2)
        assert store.participates(5, 10.0 + persistence + 0.01)

    def test_persistence_stable_per_tag(self):
        store = SessionFlagStore(session=Session.S1, rng_seed=1)
        assert store.persistence_of(3) == store.persistence_of(3)

    def test_reset_restores_a(self):
        store = SessionFlagStore(session=Session.S2, rng_seed=1)
        store.mark_read(1, 0.0)
        assert store.flags_b(1.0) == 1
        store.reset()
        assert store.participates(1, 1.0)

    def test_filter(self):
        store = SessionFlagStore(session=Session.S1, rng_seed=1)
        store.mark_read(1, 0.0)
        assert store.filter_participants([1, 2], 0.1) == [2]


class TestSessionedReading:
    def test_s1_reads_arrive_in_bursts(self):
        """Under S1 each tag is read ~once per persistence period, however
        long the reader dwells — why Phase II must run S0."""
        reader = make_reader()
        sessioned = SessionedInventory(reader, Session.S1, seed=2)
        observations, n_rounds = sessioned.run_duration(3.0)
        per_tag = {}
        for obs in observations:
            per_tag[obs.epc.value] = per_tag.get(obs.epc.value, 0) + 1
        # 3 s with 0.5-5 s persistence: each tag read a handful of times.
        assert all(1 <= count <= 8 for count in per_tag.values())
        assert n_rounds > 10  # most rounds were (nearly) empty

    def test_s0_equivalent_reader_reads_every_round(self):
        reader = make_reader()
        observations, log = reader.run_duration(3.0)
        per_tag = {}
        for obs in observations:
            per_tag[obs.epc.value] = per_tag.get(obs.epc.value, 0) + 1
        # Continuous S0 inventory: tens of reads per tag over 3 s.
        assert all(count > 20 for count in per_tag.values())

    def test_s1_rate_far_below_s0(self):
        s1_reader = make_reader(seed=5)
        s1_obs, _ = SessionedInventory(
            s1_reader, Session.S1, seed=6
        ).run_duration(3.0)
        s0_reader = make_reader(seed=5)
        s0_obs, _ = s0_reader.run_duration(3.0)
        assert len(s1_obs) < len(s0_obs) / 3

    def test_duration_validation(self):
        sessioned = SessionedInventory(make_reader(), Session.S1)
        with pytest.raises(ValueError):
            sessioned.run_duration(0.0)
