"""Tests for Gen2 command messages."""

import pytest

from repro.gen2.commands import (
    Ack,
    Query,
    QueryAdjust,
    Select,
    SelectAction,
    SelectTarget,
    select_all,
    selects_cover_key,
)
from repro.gen2.epc import EPC, MemoryBank
from repro.gen2.select import matches


class TestSelect:
    def test_mask_must_fit(self):
        with pytest.raises(ValueError):
            Select(MemoryBank.EPC, 0, 2, mask=4)

    def test_negative_pointer_rejected(self):
        with pytest.raises(ValueError):
            Select(MemoryBank.EPC, -1, 2, mask=1)

    def test_mask_bits(self):
        s = Select(MemoryBank.EPC, 0, 4, mask=0b0101)
        assert s.mask_bits() == "0101"

    def test_zero_length_mask_bits(self):
        assert select_all().mask_bits() == ""


class TestSelectAll:
    def test_matches_any_epc(self):
        s = select_all()
        assert matches(s, EPC.from_bits("1010"))
        assert matches(s, EPC.from_bits("0101"))


class TestQuery:
    def test_frame_length(self):
        assert Query(q=4).frame_length == 16

    def test_q_range(self):
        with pytest.raises(ValueError):
            Query(q=16)
        with pytest.raises(ValueError):
            Query(q=-1)


class TestQueryAdjust:
    def test_q_range(self):
        with pytest.raises(ValueError):
            QueryAdjust(q=16)


class TestAck:
    def test_rn16_range(self):
        with pytest.raises(ValueError):
            Ack(rn16=1 << 16)
        Ack(rn16=0)


class TestCoverKey:
    def test_stable_and_distinct(self):
        a = (Select(MemoryBank.EPC, 0, 2, 1),)
        b = (Select(MemoryBank.EPC, 0, 2, 2),)
        assert selects_cover_key(a) == selects_cover_key(a)
        assert selects_cover_key(a) != selects_cover_key(b)
