"""Differential tests: fast inventory engine vs the reference slot walk.

The fast engine's contract is *bit-for-bit equivalence*: same reads, same
timing, same counters, same RNG stream position as the sequential reference
path for every strategy, session mode, loss rate and deadline.  Hypothesis
drives both engines over that parameter space and compares everything the
log exposes — plus four post-round draws, which catch any divergence in how
many words each path consumed from the generator.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gen2.aloha import FixedQ, IdealDFSA, QAdaptive
from repro.gen2.inventory import InventoryEngine
from repro.gen2.timing import R420_PROFILE


def _factory(kind, q):
    if kind == "qadaptive":
        return lambda: QAdaptive(initial_q=q)
    if kind == "fixedq":
        return lambda: FixedQ(q)
    return lambda: IdealDFSA()


def _signature(engine_name, kind, q, n_tags, seed, with_replacement,
               loss, deadline, rounds, probe_stream):
    """Everything observable from ``rounds`` consecutive rounds."""
    engine = InventoryEngine(
        R420_PROFILE,
        _factory(kind, q),
        rng=seed,
        with_replacement=with_replacement,
        read_loss_probability=loss,
        engine=engine_name,
    )
    out = []
    for _ in range(rounds):
        log = engine.run_round(range(n_tags), max_duration_s=deadline)
        out.append(
            (
                [
                    (r.tag_index, r.round_index, r.slot_in_round, r.time_s)
                    for r in log.reads
                ],
                log.n_empty,
                log.n_single,
                log.n_collision,
                log.n_duplicate,
                log.n_lost,
                log.n_adjusts,
                log.truncated,
                log.end_time_s,
            )
        )
    # The stream position must match too: a path that consumed a different
    # number of PCG64 words would diverge on the *next* round.  Probed with
    # ``random()`` (whole-word draws) because a pending spare 32-bit lane
    # legitimately lives python-side in the fast engine but inside numpy's
    # cache in the reference — same word position, different cache *home*.
    # Not meaningful at all when the fast path's bulk lane prefetch is
    # engaged (loss-free QAdaptive/FixedQ runs): the engine's rng is
    # private, and the prefetch deliberately runs the raw position ahead
    # while the lane buffer carries the unconsumed draws across rounds —
    # which the multi-round log comparison above already exercises.
    if probe_stream:
        out.append(tuple(engine.rng.random(size=4).tolist()))
    return out


@settings(max_examples=60, deadline=None)
@given(
    kind=st.sampled_from(["qadaptive", "fixedq", "dfsa"]),
    q=st.integers(min_value=0, max_value=7),
    n_tags=st.sampled_from([0, 1, 3, 17, 60]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    with_replacement=st.booleans(),
    loss=st.sampled_from([0.0, 0.1, 0.5]),
    deadline=st.sampled_from([None, 0.02]),
)
def test_fast_matches_reference(
    kind, q, n_tags, seed, with_replacement, loss, deadline
):
    original_cap = InventoryEngine.MAX_SLOTS_PER_ROUND
    # A low cap makes the truncation path reachable (FixedQ(0) over many
    # tags collides forever) without hypothesis-hostile runtimes.
    InventoryEngine.MAX_SLOTS_PER_ROUND = 1500
    probe_stream = loss > 0.0 or kind == "dfsa"
    try:
        fast = _signature(
            "fast", kind, q, n_tags, seed, with_replacement, loss,
            deadline, rounds=2, probe_stream=probe_stream,
        )
        reference = _signature(
            "reference", kind, q, n_tags, seed, with_replacement, loss,
            deadline, rounds=2, probe_stream=probe_stream,
        )
    finally:
        InventoryEngine.MAX_SLOTS_PER_ROUND = original_cap
    assert fast == reference


def test_engine_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_INVENTORY_ENGINE", "reference")
    engine = InventoryEngine(R420_PROFILE, lambda: QAdaptive(initial_q=4))
    assert engine.engine == "reference"


def test_engine_rejects_unknown():
    with pytest.raises(ValueError):
        InventoryEngine(
            R420_PROFILE, lambda: QAdaptive(initial_q=4), engine="warp"
        )
