"""Smoke-run every example script: they are documentation and must stay
green.  Each runs as a subprocess exactly as a user would invoke it."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "warehouse_sorting",
        "toy_train_tracking",
        "motion_detection_office",
        "sgtin_carton_picking",
    } <= names
