"""Tests for JSONL trace persistence."""

import pytest

from repro.experiments.harness import build_lab
from repro.traces.io import (
    iter_observations,
    load_observations,
    observation_to_record,
    record_to_observation,
    save_observations,
)


@pytest.fixture
def observations():
    setup = build_lab(n_tags=5, n_mobile=1, seed=61, n_antennas=2)
    obs, _ = setup.reader.run_duration(0.5)
    return obs


class TestRoundTrip:
    def test_save_load(self, observations, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = save_observations(path, observations)
        assert n == len(observations)
        loaded = load_observations(path)
        assert len(loaded) == len(observations)
        for a, b in zip(observations, loaded):
            assert a.epc.value == b.epc.value
            assert a.time_s == pytest.approx(b.time_s)
            assert a.phase_rad == pytest.approx(b.phase_rad)
            assert a.rss_dbm == pytest.approx(b.rss_dbm)
            assert a.antenna_index == b.antenna_index
            assert a.channel_index == b.channel_index

    def test_record_round_trip(self, observations):
        obs = observations[0]
        again = record_to_observation(observation_to_record(obs))
        assert again.epc.value == obs.epc.value

    def test_streaming(self, observations, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_observations(path, observations)
        streamed = list(iter_observations(path))
        assert len(streamed) == len(observations)


class TestErrors:
    def test_bad_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = ('{"t": 1.0, "epc": "ff", "phase": 0.1, "rss": -50.0, '
                '"ant": 0, "ch": 0}')
        path.write_text(good + "\nnot json\n")
        with pytest.raises(ValueError, match="2"):
            load_observations(path, epc_bits=8)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text('{"t": 1.0, "epc": "ff"}\n')
        with pytest.raises(ValueError, match="missing field"):
            load_observations(path)

    def test_blank_lines_skipped(self, observations, tmp_path):
        path = tmp_path / "gaps.jsonl"
        save_observations(path, observations[:2])
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(load_observations(path)) == 2


class TestReplay:
    def test_trace_replays_through_assessor(self, observations, tmp_path):
        from repro.core import MotionAssessor

        path = tmp_path / "trace.jsonl"
        save_observations(path, observations)
        assessor = MotionAssessor()
        assessor.observe_all(iter_observations(path))
        verdicts = assessor.assess()
        assert len(verdicts) == 5
