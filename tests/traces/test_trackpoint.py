"""Tests for the synthetic TrackPoint trace (Fig 3/4 claims)."""

import numpy as np
import pytest

from repro.traces.analysis import (
    analyze_trace,
    count_cdf,
    per_tag_counts,
    reads_per_second,
)
from repro.traces.trackpoint import (
    TraceEvent,
    TrackPointParams,
    generate_trackpoint_trace,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trackpoint_trace(TrackPointParams(), rng=13)


@pytest.fixture(scope="module")
def stats(trace):
    return analyze_trace(trace)


class TestHeadlineClaims:
    def test_total_reads_near_paper(self, stats):
        assert 250_000 < stats.n_reads < 500_000  # paper: 367,536

    def test_tag_count_near_paper(self, stats):
        assert 480 < stats.n_tags < 560  # paper: 527

    def test_stuck_tag_dominates(self, stats):
        assert stats.top_tag_reads == 90_000  # paper: ~90,000

    def test_top_decile_claim(self, stats):
        assert stats.reads_at_top_10pct > 500  # paper: >655

    def test_top_quintile_claim(self, stats):
        assert stats.reads_at_top_20pct > 150  # paper: >205

    def test_conveyed_tags_starved(self, trace):
        params = TrackPointParams()
        counts = per_tag_counts(trace)
        conveyed = np.array(
            [counts.get(i, 0) for i in range(params.n_parked, params.n_tags)]
        )
        assert conveyed.mean() < 5  # paper: "typically read less than 5 times"

    def test_events_sorted(self, trace):
        times = [e.time_s for e in trace]
        assert times == sorted(times)

    def test_reproducible(self):
        a = generate_trackpoint_trace(TrackPointParams(), rng=5)
        b = generate_trackpoint_trace(TrackPointParams(), rng=5)
        assert len(a) == len(b)
        assert a[0] == b[0] and a[-1] == b[-1]


class TestAnalysis:
    def test_reads_per_second_binning(self, trace):
        centers, rates = reads_per_second(trace, bin_s=600.0)
        assert len(centers) == len(rates)
        assert rates.mean() == pytest.approx(
            analyze_trace(trace).reads_per_second, rel=0.1
        )

    def test_cdf_monotone(self, trace):
        counts, probs = count_cdf(trace)
        assert np.all(np.diff(counts) >= 0)
        assert probs[-1] == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            analyze_trace([])
        with pytest.raises(ValueError):
            reads_per_second([])

    def test_bad_bin_rejected(self, trace):
        with pytest.raises(ValueError):
            reads_per_second(trace, bin_s=0.0)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrackPointParams(duration_s=0.0)
        with pytest.raises(ValueError):
            TrackPointParams(n_parked=5, n_hot=16)
        with pytest.raises(ValueError):
            TrackPointParams(stuck_tag_reads=0)

    def test_stuck_tag_id(self):
        assert TrackPointParams().stuck_tag_id == 0
