"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import RngStream, derive_rng, make_rng


class TestMakeRng:
    def test_accepts_int_seed(self):
        rng = make_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_same_seed_same_draws(self):
        assert make_rng(7).integers(0, 1000) == make_rng(7).integers(0, 1000)

    def test_passthrough_generator(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_none_gives_fresh_entropy(self):
        draws = {int(make_rng(None).integers(0, 2**63)) for _ in range(5)}
        assert len(draws) > 1


class TestDeriveRng:
    def test_deterministic_per_name(self):
        a = derive_rng(5, "channel").integers(0, 2**32)
        b = derive_rng(5, "channel").integers(0, 2**32)
        assert a == b

    def test_different_names_differ(self):
        a = derive_rng(5, "channel").integers(0, 2**32)
        b = derive_rng(5, "mobility").integers(0, 2**32)
        assert a != b

    def test_different_seeds_differ(self):
        a = derive_rng(5, "x").integers(0, 2**32)
        b = derive_rng(6, "x").integers(0, 2**32)
        assert a != b


class TestRngStream:
    def test_child_reproducible_across_streams(self):
        s1 = RngStream(9)
        s2 = RngStream(9)
        assert (
            s1.child("a").integers(0, 2**32) == s2.child("a").integers(0, 2**32)
        )

    def test_child_seed_stable(self):
        assert RngStream(3).child_seed("x") == RngStream(3).child_seed("x")

    def test_child_seed_name_sensitive(self):
        s = RngStream(3)
        assert s.child_seed("x") != s.child_seed("y")

    def test_random_seed_when_none(self):
        assert isinstance(RngStream(None).seed, int)
