"""Tests for table/series rendering."""

import pytest

from repro.util.tables import format_series, format_table, sparkline


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title_first_line(self):
        out = format_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_precision(self):
        out = format_table(["v"], [[1.23456]], precision=2)
        assert "1.23" in out
        assert "1.235" not in out

    def test_bool_and_str_cells(self):
        out = format_table(["v"], [[True], ["x"]])
        assert "True" in out and "x" in out


class TestFormatSeries:
    def test_round_trip(self):
        out = format_series([1, 2], [3.0, 4.0], "n", "irr")
        assert "n" in out and "irr" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series([1], [1, 2])


class TestSparkline:
    def test_length_bounded(self):
        assert len(sparkline(list(range(100)), width=20)) <= 21

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) != ""
