"""MetricsRegistry: counters, gauges, histograms, deterministic export."""

import json

import pytest

from repro.util.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)


def test_counter_monotone():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_export_integerises_whole_values():
    counter = Counter("c")
    counter.inc(3)
    assert counter.to_dict() == {"type": "counter", "value": 3}
    assert isinstance(counter.to_dict()["value"], int)


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(5)
    gauge.dec(2)
    gauge.inc(0.5)
    assert gauge.value == 3.5
    assert gauge.to_dict() == {"type": "gauge", "value": 3.5}


def test_histogram_moments_and_percentiles():
    hist = Histogram("h")
    for v in [1.0, 2.0, 3.0, 4.0]:
        hist.observe(v)
    assert hist.count == 4
    assert hist.total == 10.0
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 4.0
    assert hist.percentile(50) == 2.5  # linear interpolation
    exported = hist.to_dict()
    assert exported["count"] == 4
    assert exported["mean"] == 2.5
    assert exported["min"] == 1.0
    assert exported["max"] == 4.0


def test_histogram_rejects_bad_input():
    hist = Histogram("h")
    with pytest.raises(ValueError):
        hist.observe(float("nan"))
    with pytest.raises(ValueError):
        hist.observe(float("inf"))
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        hist.percentile(-0.5)


def test_empty_histogram_percentile_is_defined():
    hist = Histogram("h")
    # A mid-run metrics dump may serialise before anything was observed:
    # every quantile of an empty histogram is 0, including the edges.
    assert hist.percentile(0) == 0.0
    assert hist.percentile(50) == 0.0
    assert hist.percentile(100) == 0.0


def test_single_sample_percentile_edges():
    hist = Histogram("h")
    hist.observe(2.5)
    assert hist.percentile(0) == 2.5
    assert hist.percentile(100) == 2.5


def test_empty_histogram_export():
    assert Histogram("h").to_dict() == {
        "type": "histogram",
        "count": 0,
        "sum": 0.0,
        "min": 0.0,
        "max": 0.0,
        "mean": 0.0,
        "p50": 0.0,
        "p90": 0.0,
    }


def test_registry_creates_on_first_use_and_reuses():
    registry = MetricsRegistry()
    a = registry.counter("x")
    b = registry.counter("x")
    assert a is b


def test_registry_rejects_type_clash():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x")
    with pytest.raises(ValueError, match="already registered"):
        registry.histogram("x")


def test_registry_value_lookup():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g").set(7)
    registry.histogram("h").observe(0.5)
    assert registry.value("c") == 2
    assert registry.value("g") == 7
    assert registry.value("h") == 1  # histograms report their sample count
    assert registry.value("missing", default=0) == 0
    with pytest.raises(KeyError):
        registry.value("missing")


def test_registry_names_sorted():
    registry = MetricsRegistry()
    registry.histogram("z")
    registry.counter("a")
    registry.gauge("m")
    assert registry.names() == ["a", "m", "z"]


def test_json_export_is_deterministic():
    """Two registries populated in different orders export identically."""

    def build(order):
        registry = MetricsRegistry()
        for name in order:
            registry.counter(name).inc()
        registry.histogram("h").observe(0.123456789123)
        return registry

    a = build(["x", "y", "z"])
    b = build(["z", "x", "y"])
    assert a.to_json() == b.to_json()
    parsed = json.loads(a.to_json())
    assert list(parsed) == sorted(parsed)


def test_export_rounds_floats():
    registry = MetricsRegistry()
    registry.histogram("h").observe(1 / 3)
    exported = registry.to_dict()["h"]
    assert exported["sum"] == round(1 / 3, 9)


def test_merge_registries_later_wins():
    a = MetricsRegistry()
    a.counter("shared").inc(1)
    a.counter("only_a").inc()
    b = MetricsRegistry()
    b.counter("shared").inc(5)
    merged = merge_registries([a, b])
    assert merged["shared"]["value"] == 5
    assert merged["only_a"]["value"] == 1
    assert list(merged) == sorted(merged)
