"""Tests for circular statistics (the paper's phase-jump fix)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.circular import (
    TWO_PI,
    circular_distance,
    circular_mean,
    circular_signed_difference,
    circular_std,
    unwrap_stream,
    wrap_phase,
)

angles = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestWrapPhase:
    def test_wraps_into_range(self):
        assert 0 <= wrap_phase(7.0) < TWO_PI
        assert 0 <= wrap_phase(-1.0) < TWO_PI

    def test_identity_in_range(self):
        assert wrap_phase(1.5) == pytest.approx(1.5)


class TestCircularDistance:
    def test_paper_phase_jump_example(self):
        # Section 4.3: measured 2*pi - 0.01 vs expected 0.02 -> 0.03, not 6.25.
        assert circular_distance(TWO_PI - 0.01, 0.02) == pytest.approx(0.03)

    def test_zero_for_equal(self):
        assert circular_distance(1.0, 1.0) == 0.0

    def test_max_is_pi(self):
        assert circular_distance(0.0, np.pi) == pytest.approx(np.pi)

    def test_array_input(self):
        d = circular_distance(np.array([0.0, 1.0]), np.array([0.1, 1.2]))
        assert d == pytest.approx([0.1, 0.2])

    @given(angles, angles)
    def test_symmetric(self, a, b):
        assert circular_distance(a, b) == pytest.approx(
            circular_distance(b, a), abs=1e-9
        )

    @given(angles, angles)
    def test_range(self, a, b):
        d = circular_distance(a, b)
        assert -1e-12 <= d <= np.pi + 1e-9

    @given(angles, angles)
    def test_shift_invariant(self, a, b):
        d1 = circular_distance(a, b)
        d2 = circular_distance(a + TWO_PI, b)
        assert d1 == pytest.approx(d2, abs=1e-6)


class TestSignedDifference:
    def test_small_positive(self):
        assert circular_signed_difference(0.3, 0.1) == pytest.approx(0.2)

    def test_wraps_negative(self):
        assert circular_signed_difference(0.1, TWO_PI - 0.1) == pytest.approx(0.2)

    @given(angles, angles)
    def test_magnitude_matches_distance(self, a, b):
        assert abs(circular_signed_difference(a, b)) == pytest.approx(
            circular_distance(a, b), abs=1e-6
        )


class TestCircularMean:
    def test_simple(self):
        assert circular_mean(np.array([0.1, 0.3])) == pytest.approx(0.2)

    def test_across_wrap(self):
        mean = circular_mean(np.array([TWO_PI - 0.1, 0.1]))
        assert circular_distance(mean, 0.0) < 1e-9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            circular_mean(np.array([]))


class TestCircularStd:
    def test_concentrated_small(self):
        rng = np.random.default_rng(0)
        samples = np.mod(1.0 + rng.normal(0, 0.05, 500), TWO_PI)
        assert circular_std(samples) == pytest.approx(0.05, rel=0.2)

    def test_across_wrap_still_small(self):
        rng = np.random.default_rng(0)
        samples = np.mod(rng.normal(0, 0.05, 500), TWO_PI)
        assert circular_std(samples) < 0.1

    def test_uniform_large(self):
        rng = np.random.default_rng(0)
        assert circular_std(rng.uniform(0, TWO_PI, 2000)) > 1.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            circular_std(np.array([]))


class TestUnwrapStream:
    def test_monotone_ramp(self):
        wrapped = np.mod(np.linspace(0, 4 * np.pi, 50), TWO_PI)
        unwrapped = unwrap_stream(wrapped)
        assert np.all(np.diff(unwrapped) >= -1e-9)
