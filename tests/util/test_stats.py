"""Tests for statistics helpers."""

import numpy as np
import pytest

from repro.util.stats import (
    Summary,
    cdf_points,
    empirical_cdf,
    percentile,
    ratio_of_medians,
    summarize,
)


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row_length(self):
        assert len(summarize([1.0]).as_row()) == 9


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestEmpiricalCdf:
    def test_sorted_output(self):
        values, probs = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert probs[-1] == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])


class TestCdfPoints:
    def test_default_probs(self):
        points = cdf_points(range(101))
        assert points[2] == (0.5, pytest.approx(50.0))

    def test_custom_probs(self):
        points = cdf_points([1.0, 2.0], probs=(0.5,))
        assert len(points) == 1


class TestRatioOfMedians:
    def test_basic(self):
        assert ratio_of_medians([4, 4], [2, 2]) == pytest.approx(2.0)

    def test_zero_denominator_raises(self):
        with pytest.raises(ZeroDivisionError):
            ratio_of_medians([1], [0])
