"""Tests for terminal plotting."""

import pytest

from repro.util.plots import ascii_plot, cdf_plot


class TestAsciiPlot:
    def test_renders_axes_and_legend(self):
        out = ascii_plot(
            {"a": ([0, 1, 2], [0.0, 1.0, 4.0])},
            title="t",
            x_label="x",
            y_label="y",
        )
        assert out.splitlines()[0] == "t"
        assert "o=a" in out
        assert "+" in out  # axis corner

    def test_multiple_series_distinct_glyphs(self):
        out = ascii_plot(
            {
                "first": ([0, 1], [0.0, 1.0]),
                "second": ([0, 1], [1.0, 0.0]),
            }
        )
        assert "o=first" in out and "x=second" in out

    def test_constant_series_ok(self):
        out = ascii_plot({"flat": ([0, 1, 2], [1.0, 1.0, 1.0])})
        assert "o" in out

    def test_single_point(self):
        out = ascii_plot({"dot": ([1.0], [2.0])})
        assert "o" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": ([], [])})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": ([1, 2], [1.0])})

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": ([0, 1], [0, 1])}, width=4, height=2)

    def test_extremes_labelled(self):
        out = ascii_plot({"a": ([0, 10], [5.0, 25.0])})
        assert "25" in out and "5" in out and "10" in out


class TestCdfPlot:
    def test_monotone_rendering(self):
        out = cdf_plot({"sample": [1.0, 2.0, 2.0, 3.0, 10.0]}, title="cdf")
        assert "CDF" in out
        assert out.splitlines()[0] == "cdf"

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            cdf_plot({"sample": []})


class TestFigurePlots:
    def test_fig02_plot(self):
        from repro.experiments import fig02_irr

        result = fig02_irr.run(
            tag_counts=(1, 5, 10), initial_qs=(4,), repeats=3, seed=1
        )
        assert "Fig 2" in fig02_irr.format_plot(result)

    def test_fig17_plot(self):
        from repro.experiments import fig17_cost

        result = fig17_cost.run(
            n_tags=20, n_mobile=1, n_cycles=10, warmup_cycles=5,
            phase2_duration_s=0.5, seed=23,
        )
        assert "CDF" in fig17_cost.format_plot(result)


class TestMoreFigurePlots:
    def test_fig12_plot(self):
        from repro.experiments import fig12_roc

        result = fig12_roc.run(
            n_stationary=6,
            n_people=1,
            monitor_duration_s=20.0,
            mobile_duration_s=8.0,
            seed=11,
        )
        out = fig12_roc.format_plot(result)
        assert "FPR" in out and "TPR" in out

    def test_fig18_plot(self):
        from repro.experiments import fig18_gain

        result = fig18_gain.run(
            percents=(5.0, 20.0),
            populations=(24,),
            n_cycles=4,
            warmup_cycles=1,
            phase2_duration_s=0.8,
            seed=29,
        )
        out = fig18_gain.format_plot(result)
        assert "tagwatch" in out and "read-all" in out
