"""Full-stack integration: detection -> scheduling -> tracking, end to end.

The paper's footnote 1 ("our system can deal with the case where multiple
mobile objects present") combined with the Fig 1(b) application: two toy
trains among stationary companions, read by Tagwatch, tracked by the fleet
tracker from the readings Tagwatch delivers.
"""

import numpy as np
import pytest

from repro.core import Tagwatch, TagwatchConfig
from repro.gen2.epc import random_epc_population
from repro.radio.constants import single_channel
from repro.reader import LLRPClient, SimReader
from repro.tracking import FleetTracker, evaluate_track
from repro.util.rng import RngStream
from repro.world import Antenna, CircularPath, Scene, Stationary, TagInstance

MOVE_TIME = 22.0


@pytest.fixture(scope="module")
def full_stack():
    streams = RngStream(91)
    epcs = random_epc_population(12, rng=streams.child("epcs"))
    track_a = CircularPath(
        (1.0, 0.0, 0.8), 0.2, 0.6, start_time=MOVE_TIME
    )
    track_b = CircularPath(
        (-1.2, 0.4, 0.8), 0.25, 0.5, start_time=MOVE_TIME
    )
    placement = streams.child("placement")
    tags = [
        TagInstance(epc=epcs[0], trajectory=track_a,
                    phase_offset_rad=float(placement.uniform(0, 6.28))),
        TagInstance(epc=epcs[1], trajectory=track_b,
                    phase_offset_rad=float(placement.uniform(0, 6.28))),
    ]
    for i in range(2, 12):
        tags.append(
            TagInstance(
                epc=epcs[i],
                trajectory=Stationary((0.3 * i - 1.5, 2.2, 0.8)),
                phase_offset_rad=float(placement.uniform(0, 6.28)),
            )
        )
    antennas = [
        Antenna((5, 5, 1.5)),
        Antenna((-5, 5, 1.5)),
        Antenna((-5, -5, 1.5)),
        Antenna((5, -5, 1.5)),
    ]
    scene = Scene(
        antennas, tags, channel_plan=single_channel(),
        seed=streams.child_seed("scene"),
    )
    reader = SimReader(scene, seed=streams.child_seed("reader"))
    client = LLRPClient(reader)
    client.connect()
    # The tracking app pins the tags it tracks (Section 5's config file).
    config = TagwatchConfig(phase2_duration_s=4.0).with_concerned(
        [epcs[0], epcs[1]]
    )
    tagwatch = Tagwatch(client, config)

    fleet = FleetTracker([a.position for a in antennas], scene.channel_plan)
    delivered = []
    tagwatch.subscribe(delivered.append)

    tagwatch.warm_up(MOVE_TIME - 4.0)
    while reader.time_s < MOVE_TIME + 6.0:
        tagwatch.run_cycle()

    calibration = [o for o in delivered if o.time_s < MOVE_TIME - 0.3]
    fleet.register(epcs[0].value, track_a.position(0.0), calibration)
    fleet.register(epcs[1].value, track_b.position(0.0), calibration)
    fleet.feed_all([o for o in delivered if o.time_s >= MOVE_TIME - 0.3])
    return tagwatch, fleet, epcs, (track_a, track_b), delivered


class TestDetection:
    def test_both_trains_targeted_after_motion(self, full_stack):
        tagwatch, _, epcs, _, _ = full_stack
        # Concerned pinning guarantees both are scheduled; the observable
        # consequence is a dense post-move reading rate for each train.
        t0, t1 = MOVE_TIME, MOVE_TIME + 6.0
        for epc in epcs[:2]:
            irr = tagwatch.history.irr(epc.value, t0, t1).irr_hz
            assert irr > 15.0

    def test_stationary_tags_suppressed(self, full_stack):
        tagwatch, _, epcs, _, _ = full_stack
        t0, t1 = MOVE_TIME, MOVE_TIME + 6.0
        static_irrs = [
            tagwatch.history.irr(e.value, t0, t1).irr_hz for e in epcs[2:]
        ]
        mobile_irrs = [
            tagwatch.history.irr(e.value, t0, t1).irr_hz for e in epcs[:2]
        ]
        assert min(mobile_irrs) > 3 * float(np.mean(static_irrs))


class TestTracking:
    def test_both_trains_tracked(self, full_stack):
        _, fleet, epcs, tracks, _ = full_stack
        for epc, truth in zip(epcs[:2], tracks):
            estimates = [
                e
                for e in fleet.estimates(epc.value)
                if e.time_s > MOVE_TIME + 0.5
            ]
            assert len(estimates) > 20
            accuracy = evaluate_track(estimates, truth)
            assert accuracy.mean_error_cm < 6.0
