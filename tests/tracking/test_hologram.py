"""Tests for the grid hologram localiser."""

import numpy as np
import pytest

from repro.gen2.epc import random_epc_population
from repro.radio.constants import single_channel
from repro.reader import SimReader
from repro.tracking.hologram import HologramLocalizer, TrackingConfig
from repro.world.motion import Stationary
from repro.world.scene import Antenna, Scene, TagInstance


def static_setup(position=(0.2, 0.0, 0.8), seed=7):
    epcs = random_epc_population(1, rng=42)
    tags = [
        TagInstance(epc=epcs[0], trajectory=Stationary(position),
                    phase_offset_rad=1.0)
    ]
    antennas = [
        Antenna((5, 5, 1.5)),
        Antenna((-5, 5, 1.5)),
        Antenna((-5, -5, 1.5)),
        Antenna((5, -5, 1.5)),
    ]
    scene = Scene(antennas, tags, channel_plan=single_channel(), seed=seed)
    reader = SimReader(scene, seed=seed + 1)
    localizer = HologramLocalizer(
        [a.position for a in antennas], scene.channel_plan
    )
    return reader, localizer, position


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrackingConfig(window_s=0.0)
        with pytest.raises(ValueError):
            TrackingConfig(search_radius_m=0.001, coarse_step_m=0.02)
        with pytest.raises(ValueError):
            TrackingConfig(velocity_step_mps=0.0)


class TestCalibration:
    def test_requires_observations(self):
        _, localizer, _ = static_setup()
        with pytest.raises(ValueError):
            localizer.calibrate([], (0, 0, 0.8))

    def test_learns_offsets(self):
        reader, localizer, position = static_setup()
        observations = []
        for antenna in range(4):
            observations += reader.inventory_round(antenna).observations
        n = localizer.calibrate(observations, position)
        assert n == 4
        assert localizer.is_calibrated


class TestStaticLocalization:
    def test_recovers_known_position(self):
        reader, localizer, position = static_setup()
        calib = []
        for antenna in range(4):
            calib += reader.inventory_round(antenna).observations
        localizer.calibrate(calib, position)
        fresh = []
        for antenna in range(4):
            fresh += reader.inventory_round(antenna).observations
        estimate = localizer.locate_window(fresh, prior=position)
        error = np.linalg.norm(estimate.position[:2] - np.asarray(position)[:2])
        assert error < 0.02

    def test_too_few_reads_rejected(self):
        reader, localizer, position = static_setup()
        calib = []
        for antenna in range(4):
            calib += reader.inventory_round(antenna).observations
        localizer.calibrate(calib, position)
        with pytest.raises(ValueError):
            localizer.locate_window(calib[:1], prior=position)

    def test_uncalibrated_window_rejected(self):
        reader, localizer, position = static_setup()
        observations = []
        for antenna in range(4):
            observations += reader.inventory_round(antenna).observations
        with pytest.raises(ValueError):
            localizer.locate_window(observations, prior=position)

    def test_track_empty_stream(self):
        _, localizer, _ = static_setup()
        assert localizer.track([], (0, 0, 0.8)) == []
