"""Tests for the differential (DAH) tracker."""

import numpy as np
import pytest

from repro.gen2.epc import random_epc_population
from repro.radio.constants import single_channel
from repro.reader import SimReader
from repro.tracking import evaluate_track
from repro.tracking.dah import DahConfig, DifferentialTracker
from repro.world.motion import CircularPath, Stationary
from repro.world.scene import Antenna, Scene, TagInstance


def train_setup(seed=7, n_static=0, start_time=1.0):
    epcs = random_epc_population(1 + n_static, rng=42)
    track = CircularPath(
        center=(0.0, 0.0, 0.8), radius=0.2, speed=0.7, start_time=start_time
    )
    tags = [TagInstance(epc=epcs[0], trajectory=track, phase_offset_rad=1.0)]
    for i in range(n_static):
        tags.append(
            TagInstance(
                epc=epcs[1 + i],
                trajectory=Stationary((0.6 + 0.15 * i, 0.6, 0.8)),
                phase_offset_rad=float(i),
            )
        )
    antennas = [
        Antenna((5, 5, 1.5)),
        Antenna((-5, 5, 1.5)),
        Antenna((-5, -5, 1.5)),
        Antenna((5, -5, 1.5)),
    ]
    scene = Scene(antennas, tags, channel_plan=single_channel(), seed=seed)
    reader = SimReader(scene, seed=seed + 1)
    tracker = DifferentialTracker(
        [a.position for a in antennas], scene.channel_plan
    )
    return reader, tracker, track, epcs


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DahConfig(window_s=0.0)
        with pytest.raises(ValueError):
            DahConfig(min_reads_per_fix=2)


class TestTracking:
    def test_requires_calibration(self):
        _, tracker, track, _ = train_setup()
        with pytest.raises(ValueError):
            tracker.track([], (0, 0, 0.8))

    def test_clean_scene_sub_2cm(self):
        """With no companions (50 Hz), the track recovers to ~1 cm —
        the paper's 1.8 cm operating point."""
        reader, tracker, track, epcs = train_setup()
        calib, _ = reader.run_duration(1.0)
        tracker.calibrate(
            [o for o in calib if o.epc.value == epcs[0].value],
            track.position(0.0),
        )
        obs, _ = reader.run_duration(4.0)
        stream = [o for o in obs if o.epc.value == epcs[0].value]
        estimates = tracker.track(stream, track.position(0.9))
        moving = [e for e in estimates if e.time_s > 1.2]
        accuracy = evaluate_track(moving, track)
        assert accuracy.mean_error_cm < 2.0

    def test_estimates_report_velocity(self):
        reader, tracker, track, epcs = train_setup()
        calib, _ = reader.run_duration(1.0)
        tracker.calibrate(calib, track.position(0.0))
        obs, _ = reader.run_duration(2.0)
        estimates = tracker.track(obs, track.position(0.9))
        speeds = [np.linalg.norm(e.velocity[:2]) for e in estimates[-5:]]
        assert np.mean(speeds) == pytest.approx(0.7, abs=0.25)

    def test_unwrap_accuracy_with_good_prediction(self):
        reader, tracker, track, epcs = train_setup()
        calib, _ = reader.run_duration(1.0)
        tracker.calibrate(calib, track.position(0.0))
        obs, _ = reader.run_duration(0.5)
        for o in obs[:5]:
            truth = track.position(o.time_s)
            d_true = np.linalg.norm(
                truth - tracker.antennas[o.antenna_index]
            )
            d = tracker._unwrap_distance(o, d_true)
            assert abs(d - d_true) < 0.02

    def test_uncalibrated_shard_skipped(self):
        reader, tracker, track, epcs = train_setup()
        calib, _ = reader.run_duration(1.0)
        # Calibrate only antenna 0's shard.
        tracker.calibrate(
            [o for o in calib if o.antenna_index == 0], track.position(0.0)
        )
        obs, _ = reader.run_duration(1.0)
        # Tracking cannot fix (needs 3 antennas) but must not crash.
        estimates = tracker.track(obs, track.position(0.9))
        assert estimates == []

    def test_velocity_aided_mode_runs(self):
        reader, _, track, epcs = train_setup()
        tracker = DifferentialTracker(
            [a.position for a in reader.scene.antennas],
            reader.scene.channel_plan,
            DahConfig(velocity_aided_unwrap=True),
        )
        calib, _ = reader.run_duration(1.0)
        tracker.calibrate(calib, track.position(0.0))
        obs, _ = reader.run_duration(2.0)
        estimates = tracker.track(obs, track.position(0.9))
        moving = [e for e in estimates if e.time_s > 1.2]
        accuracy = evaluate_track(moving, track)
        assert accuracy.mean_error_cm < 2.5


class TestRobustSolve:
    def test_outlier_rejected(self):
        reader, tracker, track, epcs = train_setup()
        calib, _ = reader.run_duration(1.0)
        tracker.calibrate(calib, track.position(0.0))
        truth = track.position(0.0)
        samples = []
        for antenna_index in range(4):
            d = float(
                np.linalg.norm(truth - tracker.antennas[antenna_index])
            )
            samples.append((0.0, antenna_index, d))
            samples.append((0.01, antenna_index, d))
        # Inject a wrap-slip-sized outlier on one sample.
        samples[0] = (samples[0][0], samples[0][1], samples[0][2] + 0.16)
        p, v, n_used = tracker._solve_robust(
            samples, truth + 0.01, np.zeros(3)
        )
        # The slipped sample must go; its antenna's clean twin may be
        # dragged out with it by the first-pass fit, which is fine.
        assert len(samples) - 2 <= n_used <= len(samples) - 1
        assert np.linalg.norm(p[:2] - truth[:2]) < 0.02
