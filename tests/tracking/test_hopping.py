"""Tracking under frequency hopping: per-(antenna, channel) calibration."""

import numpy as np
import pytest

from repro.gen2.epc import random_epc_population
from repro.radio.constants import china_920_926
from repro.reader import SimReader
from repro.tracking import evaluate_track
from repro.tracking.dah import DifferentialTracker
from repro.world.motion import CircularPath
from repro.world.scene import Antenna, Scene, TagInstance


@pytest.fixture(scope="module")
def hopping_setup():
    epcs = random_epc_population(1, rng=81)
    # Fast hop dwell so the calibration hold visits every channel.
    plan = china_920_926(n_channels=4, hop_dwell_s=0.1)
    track = CircularPath((0.0, 0.0, 0.8), 0.2, 0.7, start_time=3.0)
    tags = [TagInstance(epc=epcs[0], trajectory=track, phase_offset_rad=1.0)]
    antennas = [
        Antenna((5, 5, 1.5)),
        Antenna((-5, 5, 1.5)),
        Antenna((-5, -5, 1.5)),
        Antenna((5, -5, 1.5)),
    ]
    scene = Scene(antennas, tags, channel_plan=plan, seed=82)
    reader = SimReader(scene, seed=83)
    tracker = DifferentialTracker(
        [a.position for a in antennas], plan
    )
    calibration, _ = reader.run_duration(2.8)
    n_offsets = tracker.calibrate(calibration, track.position(0.0))
    observations, _ = reader.run_duration(5.0)
    return tracker, track, observations, n_offsets


class TestHoppingCalibration:
    def test_offsets_per_antenna_channel(self, hopping_setup):
        _, _, _, n_offsets = hopping_setup
        # 4 antennas x 4 channels; the hold must have covered most shards.
        assert n_offsets >= 12

    def test_tracking_survives_hopping(self, hopping_setup):
        tracker, track, observations, _ = hopping_setup
        estimates = tracker.track(observations, track.position(2.9))
        moving = [e for e in estimates if e.time_s > 3.3]
        accuracy = evaluate_track(moving, track)
        assert accuracy.mean_error_cm < 4.0
