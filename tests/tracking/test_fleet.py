"""Tests for multi-tag tracking (the paper's footnote 1)."""

import numpy as np
import pytest

from repro.gen2.epc import random_epc_population
from repro.radio.constants import single_channel
from repro.reader import SimReader
from repro.site.fusion import TagReport
from repro.tracking import evaluate_track
from repro.tracking.fleet import FleetTracker, SiteFleetTracker
from repro.world.motion import CircularPath, Stationary
from repro.world.scene import Antenna, Scene, TagInstance


@pytest.fixture(scope="module")
def two_trains():
    """Two toy trains on separate circular tracks, plus one static tag."""
    epcs = random_epc_population(3, rng=77)
    track_a = CircularPath((1.0, 0.0, 0.8), 0.2, 0.6, start_time=1.0)
    track_b = CircularPath((-1.0, 0.5, 0.8), 0.25, 0.5, start_time=1.0)
    tags = [
        TagInstance(epc=epcs[0], trajectory=track_a, phase_offset_rad=0.5),
        TagInstance(epc=epcs[1], trajectory=track_b, phase_offset_rad=1.5),
        TagInstance(
            epc=epcs[2], trajectory=Stationary((0.0, 2.0, 0.8))
        ),
    ]
    antennas = [
        Antenna((5, 5, 1.5)),
        Antenna((-5, 5, 1.5)),
        Antenna((-5, -5, 1.5)),
        Antenna((5, -5, 1.5)),
    ]
    scene = Scene(antennas, tags, channel_plan=single_channel(), seed=78)
    reader = SimReader(scene, seed=79)
    fleet = FleetTracker(
        [a.position for a in antennas], scene.channel_plan
    )
    calibration, _ = reader.run_duration(1.0)
    fleet.register(epcs[0].value, track_a.position(0.0), calibration)
    fleet.register(epcs[1].value, track_b.position(0.0), calibration)
    observations, _ = reader.run_duration(5.0)
    fleet.feed_all(calibration)
    routed = fleet.feed_all(observations)
    return fleet, epcs, (track_a, track_b), routed, len(observations)


class TestRegistration:
    def test_needs_calibration_readings(self):
        fleet = FleetTracker([(0, 0, 1.5)], single_channel())
        with pytest.raises(ValueError):
            fleet.register(123, (0, 0, 0.8), [])

    def test_tracked_listing(self, two_trains):
        fleet, epcs, _, _, _ = two_trains
        assert fleet.is_tracking(epcs[0].value)
        assert not fleet.is_tracking(epcs[2].value)
        assert len(fleet.tracked_epc_values()) == 2


class TestRouting:
    def test_untracked_observations_rejected(self, two_trains):
        fleet, _, _, routed, total = two_trains
        assert 0 < routed < total  # the static tag's reads were dropped


class TestAccuracy:
    def test_both_trains_tracked_accurately(self, two_trains):
        fleet, epcs, tracks, _, _ = two_trains
        for epc, truth in zip(epcs[:2], tracks):
            estimates = [
                e for e in fleet.estimates(epc.value) if e.time_s > 1.3
            ]
            accuracy = evaluate_track(estimates, truth)
            assert accuracy.mean_error_cm < 4.0

    def test_latest_positions(self, two_trains):
        fleet, epcs, tracks, _, _ = two_trains
        latest = fleet.latest_positions()
        assert set(latest) == {epcs[0].value, epcs[1].value}
        assert all(p is not None for p in latest.values())

    def test_unknown_tag_raises(self, two_trains):
        fleet, _, _, _, _ = two_trains
        with pytest.raises(KeyError):
            fleet.estimates(42)


@pytest.fixture()
def site_fleet():
    """A site fleet tracker calibrated on one stationary tag."""
    epcs = random_epc_population(1, rng=91)
    home = (0.5, 0.5, 0.8)
    tags = [TagInstance(epc=epcs[0], trajectory=Stationary(home))]
    antennas = [Antenna((5, 5, 1.5)), Antenna((-5, 5, 1.5))]
    scene = Scene(antennas, tags, channel_plan=single_channel(), seed=92)
    reader = SimReader(scene, seed=93)
    fleet = SiteFleetTracker(
        [a.position for a in antennas], scene.channel_plan
    )
    calibration, _ = reader.run_duration(1.0)
    fleet.register(epcs[0].value, home, calibration)
    observations, _ = reader.run_duration(1.0)
    return fleet, epcs[0], observations


class TestSiteFleetTracker:
    def test_duplicate_reports_feed_trackers_once(self, site_fleet):
        fleet, epc, observations = site_fleet
        reports = [
            TagReport.from_observation(obs, reader_id=0)
            for obs in observations
        ]
        assert fleet.ingest_reports(reports) == len(reports)
        # Replaying the whole batch (at-least-once transport) is a no-op.
        assert fleet.ingest_reports(reports) == 0
        assert fleet.fusion.n_reports == len(reports)

    def test_same_read_from_two_readers_counts_twice(self, site_fleet):
        fleet, epc, observations = site_fleet
        obs = observations[0]
        first = TagReport.from_observation(obs, reader_id=0)
        second = TagReport.from_observation(obs, reader_id=1)
        assert fleet.ingest_report(first)
        # A different reader's sighting is a distinct physical read.
        assert fleet.ingest_report(second)
        assert fleet.fusion.record(epc.value).reader_ids == [0, 1]

    def test_reader_filter(self, site_fleet):
        fleet, epc, observations = site_fleet
        fleet.accepted_reader_ids = {0}
        outsider = TagReport.from_observation(observations[0], reader_id=7)
        assert not fleet.ingest_report(outsider)
        assert fleet.fusion.n_reports == 0

    def test_unregistered_tags_dedup_but_do_not_route(self, site_fleet):
        fleet, epc, observations = site_fleet
        report = TagReport(
            epc_value=epc.value + 1,
            reader_id=0,
            time_s=0.5,
            antenna_index=0,
            channel_index=0,
            phase_rad=1.0,
            rss_dbm=-60.0,
        )
        assert not fleet.ingest_report(report)
        # The report still entered provenance — only routing declined.
        assert fleet.fusion.n_reports == 1
