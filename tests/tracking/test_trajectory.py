"""Tests for track accuracy evaluation."""

import numpy as np
import pytest

from repro.tracking.hologram import PositionEstimate
from repro.tracking.trajectory import evaluate_track
from repro.world.motion import Stationary


def estimate(t, position):
    return PositionEstimate(
        time_s=t,
        position=np.asarray(position, dtype=float),
        velocity=np.zeros(3),
        score=1.0,
        n_reads=4,
    )


class TestEvaluateTrack:
    def test_zero_error_for_perfect_track(self):
        truth = Stationary((1.0, 2.0, 0.8))
        estimates = [estimate(t, (1.0, 2.0, 0.8)) for t in (0.0, 1.0)]
        accuracy = evaluate_track(estimates, truth)
        assert accuracy.mean_error_m == 0.0
        assert accuracy.n_estimates == 2

    def test_planar_ignores_z(self):
        truth = Stationary((1.0, 2.0, 0.8))
        estimates = [estimate(0.0, (1.0, 2.0, 5.0))]
        assert evaluate_track(estimates, truth).mean_error_m == 0.0
        assert evaluate_track(
            estimates, truth, planar=False
        ).mean_error_m == pytest.approx(4.2)

    def test_statistics(self):
        truth = Stationary((0.0, 0.0, 0.8))
        estimates = [
            estimate(0.0, (0.01, 0.0, 0.8)),
            estimate(1.0, (0.03, 0.0, 0.8)),
        ]
        accuracy = evaluate_track(estimates, truth)
        assert accuracy.mean_error_m == pytest.approx(0.02)
        assert accuracy.max_error_m == pytest.approx(0.03)
        assert accuracy.mean_error_cm == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_track([], Stationary((0, 0, 0)))
