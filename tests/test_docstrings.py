"""Documentation-completeness checks: every public item carries a docstring.

An open-source release lives or dies by its API docs; this test keeps the
bar mechanical — every public module, class, and function/method in the
library must have a non-trivial docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

IGNORED_MEMBER_NAMES = {"__init__"}  # documented at class level


def documented(cls, attr_name, attr):
    """A method counts as documented if it or any base's version has docs
    (the usual convention: overrides inherit the contract's docstring)."""
    if attr.__doc__ and attr.__doc__.strip():
        return True
    for base in cls.__mro__[1:]:
        base_attr = base.__dict__.get(attr_name)
        if base_attr is not None and getattr(base_attr, "__doc__", None):
            return True
    return False


def iter_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


MODULES = list(iter_public_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) > 20, (
        f"{module.__name__} needs a real module docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at home
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_") and attr_name not in IGNORED_MEMBER_NAMES:
                    continue
                if attr_name in IGNORED_MEMBER_NAMES:
                    continue
                if inspect.isfunction(attr) and not documented(
                    member, attr_name, attr
                ):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {sorted(undocumented)}"
    )
