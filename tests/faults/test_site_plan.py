"""SiteFaultPlan unit tests: windows, filtering, and the no-op contract.

The site-scale fault plan must honor the same contract as the
single-reader :class:`~repro.faults.plan.FaultPlan`: an empty plan (and
a plan that never touches a given reader) draws zero random numbers and
leaves the run byte-identical to an unfaulted one.
"""

import pytest

from repro.faults.site import (
    AntennaDegradation,
    ReaderChannelJam,
    ReaderOutage,
    SiteFaultPlan,
)
from repro.gen2.epc import random_epc_population
from repro.radio.measurement import TagObservation


def obs(time_s, channel=0):
    epc = random_epc_population(1, rng=7)[0]
    return TagObservation(
        epc=epc, time_s=time_s, phase_rad=0.0, rss_dbm=-60.0,
        antenna_index=0, channel_index=channel,
    )


class TestWindows:
    def test_outage_window_is_half_open(self):
        outage = ReaderOutage(reader_id=0, at_s=1.0, downtime_s=0.5)
        assert outage.up_at_s == 1.5
        assert not outage.covers(0.999)
        assert outage.covers(1.0)
        assert outage.covers(1.499)
        assert not outage.covers(1.5)

    def test_same_reader_outages_cannot_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            SiteFaultPlan(outages=(
                ReaderOutage(reader_id=2, at_s=1.0, downtime_s=1.0),
                ReaderOutage(reader_id=2, at_s=1.5, downtime_s=0.2),
            ))
        # Different readers may die at the same instant.
        SiteFaultPlan(outages=(
            ReaderOutage(reader_id=0, at_s=1.0, downtime_s=1.0),
            ReaderOutage(reader_id=1, at_s=1.0, downtime_s=1.0),
        ))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReaderOutage(reader_id=0, at_s=-0.1, downtime_s=1.0)
        with pytest.raises(ValueError):
            ReaderOutage(reader_id=0, at_s=0.0, downtime_s=0.0)
        with pytest.raises(ValueError):
            AntennaDegradation(
                reader_id=0, start_s=1.0, end_s=0.5, extra_loss=0.5
            )
        with pytest.raises(ValueError):
            AntennaDegradation(
                reader_id=0, start_s=0.0, end_s=1.0, extra_loss=0.0
            )
        with pytest.raises(ValueError):
            ReaderChannelJam(
                reader_id=0, channel_index=-2, start_s=0.0, end_s=1.0
            )

    def test_up_segments_are_the_outage_complement(self):
        plan = SiteFaultPlan(outages=(
            ReaderOutage(reader_id=0, at_s=1.0, downtime_s=1.0),
            ReaderOutage(reader_id=0, at_s=3.0, downtime_s=0.5),
        ))
        assert plan.up_segments(0, 0.0, 4.0) == [
            (0.0, 1.0), (2.0, 3.0), (3.5, 4.0),
        ]
        # An untouched reader is up for the whole interval.
        assert plan.up_segments(1, 0.0, 4.0) == [(0.0, 4.0)]
        assert plan.down_time_s(0, 0.0, 4.0) == pytest.approx(1.5)
        assert plan.down_time_s(1, 0.0, 4.0) == 0.0

    def test_outage_spanning_the_interval_leaves_no_up_segment(self):
        plan = SiteFaultPlan(outages=(
            ReaderOutage(reader_id=0, at_s=0.0, downtime_s=10.0),
        ))
        assert plan.up_segments(0, 2.0, 3.0) == []


class TestNoopContract:
    def test_empty_plan_is_noop(self):
        plan = SiteFaultPlan.none()
        assert plan.is_noop
        assert plan.reader_noop(0) and plan.reader_noop(99)

    def test_untouched_reader_is_noop_even_in_a_busy_plan(self):
        plan = SiteFaultPlan(
            outages=(ReaderOutage(reader_id=0, at_s=1.0, downtime_s=1.0),),
            jams=(ReaderChannelJam(
                reader_id=1, channel_index=0, start_s=0.0, end_s=1.0
            ),),
        )
        assert not plan.is_noop
        assert not plan.reader_noop(0)
        assert not plan.reader_noop(1)
        assert plan.reader_noop(2)

    def test_filter_keeps_everything_for_untouched_reader(self):
        plan = SiteFaultPlan(jams=(
            ReaderChannelJam(
                reader_id=0, channel_index=0, start_s=0.0, end_s=1.0
            ),
        ))
        batch = [obs(0.5, channel=0), obs(0.7, channel=1)]
        kept, n_jammed, n_degraded = plan.filter_observations(batch, 3, 0)
        assert kept == batch
        assert (n_jammed, n_degraded) == (0, 0)


class TestFiltering:
    def test_jam_drops_only_matching_channel_inside_window(self):
        plan = SiteFaultPlan(jams=(
            ReaderChannelJam(
                reader_id=0, channel_index=2, start_s=1.0, end_s=2.0
            ),
        ))
        batch = [
            obs(1.5, channel=2),   # jammed
            obs(1.5, channel=1),   # other channel: kept
            obs(2.5, channel=2),   # outside window: kept
        ]
        kept, n_jammed, n_degraded = plan.filter_observations(batch, 0, 0)
        assert len(kept) == 2 and n_jammed == 1 and n_degraded == 0

    def test_wideband_jam_hits_every_channel(self):
        plan = SiteFaultPlan(jams=(
            ReaderChannelJam(
                reader_id=0, channel_index=-1, start_s=0.0, end_s=10.0
            ),
        ))
        batch = [obs(1.0, channel=c) for c in range(5)]
        kept, n_jammed, _ = plan.filter_observations(batch, 0, 0)
        assert kept == [] and n_jammed == 5

    def test_total_degradation_drops_everything_in_window(self):
        plan = SiteFaultPlan(degradations=(
            AntennaDegradation(
                reader_id=0, start_s=1.0, end_s=2.0, extra_loss=1.0
            ),
        ))
        batch = [obs(1.5), obs(3.0)]
        kept, _, n_degraded = plan.filter_observations(batch, 0, 0)
        assert [o.time_s for o in kept] == [3.0]
        assert n_degraded == 1

    def test_filter_is_seed_deterministic(self):
        plan = SiteFaultPlan(degradations=(
            AntennaDegradation(
                reader_id=0, start_s=0.0, end_s=10.0, extra_loss=0.5
            ),
        ))
        batch = [obs(0.1 * i) for i in range(40)]
        first = plan.filter_observations(batch, 0, seed=5)
        second = plan.filter_observations(batch, 0, seed=5)
        other_seed = plan.filter_observations(batch, 0, seed=6)
        assert first == second
        assert first != other_seed  # the draw stream is really seeded


class TestSerialisation:
    PLAN = SiteFaultPlan(
        outages=(ReaderOutage(reader_id=1, at_s=2.0, downtime_s=0.75),),
        degradations=(AntennaDegradation(
            reader_id=0, start_s=0.5, end_s=1.5, extra_loss=0.3
        ),),
        jams=(ReaderChannelJam(
            reader_id=2, channel_index=3, start_s=1.0, end_s=2.0
        ),),
    )

    def test_round_trip(self):
        clone = SiteFaultPlan.from_dict(self.PLAN.to_dict())
        assert clone == self.PLAN

    def test_unknown_keys_rejected(self):
        data = self.PLAN.to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown"):
            SiteFaultPlan.from_dict(data)
