"""FaultPlan: validation, serialisation round-trip, no-op detection."""

import pytest

from repro.faults import AntennaBlackout, FaultPlan


def test_default_plan_is_noop():
    assert FaultPlan().is_noop
    assert FaultPlan.none().is_noop


def test_any_fault_defeats_noop():
    assert not FaultPlan(report_loss=0.1).is_noop
    assert not FaultPlan(burst_enter=0.1).is_noop
    assert not FaultPlan(phase_spike=0.1).is_noop
    assert not FaultPlan(duplicate=0.1).is_noop
    assert not FaultPlan(reorder=0.1).is_noop
    assert not FaultPlan(delay=0.1).is_noop
    assert not FaultPlan(disconnect_at_s=(1.0,)).is_noop
    assert not FaultPlan(blackouts=(AntennaBlackout(0, 0.0, 1.0),)).is_noop


def test_burst_exit_alone_still_noop():
    # burst_exit has a non-zero default and no effect without burst_enter.
    assert FaultPlan(burst_exit=0.9).is_noop


@pytest.mark.parametrize(
    "kwargs",
    [
        {"report_loss": -0.1},
        {"report_loss": 1.5},
        {"phase_spike": 2.0},
        {"duplicate": -1.0},
        {"burst_enter": 0.2, "burst_exit": 0.0},
        {"phase_spike_std_rad": -0.5},
        {"disconnect_at_s": (-1.0,)},
    ],
)
def test_invalid_plans_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultPlan(**kwargs)


def test_blackout_validation():
    with pytest.raises(ValueError):
        AntennaBlackout(-1, 0.0, 1.0)
    with pytest.raises(ValueError):
        AntennaBlackout(0, 2.0, 1.0)
    blackout = AntennaBlackout(1, 2.0, 4.0)
    assert blackout.covers(1, 2.0)
    assert blackout.covers(1, 3.999)
    assert not blackout.covers(1, 4.0)  # half-open window
    assert not blackout.covers(0, 3.0)  # other antenna


def test_disconnect_times_sorted():
    plan = FaultPlan(disconnect_at_s=(9.0, 1.0, 4.0))
    assert plan.disconnect_at_s == (1.0, 4.0, 9.0)


def test_round_trip_exact():
    plan = FaultPlan(
        report_loss=0.2,
        burst_enter=0.05,
        burst_exit=0.4,
        phase_spike=0.1,
        phase_spike_std_rad=0.7,
        duplicate=0.03,
        reorder=0.02,
        delay=0.01,
        disconnect_at_s=(3.0, 8.5),
        blackouts=(AntennaBlackout(2, 1.0, 2.5),),
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown fault plan keys"):
        FaultPlan.from_dict({"report_loss": 0.1, "typo_field": 1})


def test_scaled_clamps_and_preserves_structure():
    plan = FaultPlan(report_loss=0.4, duplicate=0.6, burst_exit=0.5)
    doubled = plan.scaled(2.0)
    assert doubled.report_loss == 0.8
    assert doubled.duplicate == 1.0  # clamped
    assert doubled.burst_exit == 0.5  # exit probability is not a fault rate
    halved = plan.scaled(0.5)
    assert halved.report_loss == pytest.approx(0.2)
    assert plan.scaled(0.0).is_noop
    with pytest.raises(ValueError):
        plan.scaled(-1.0)
