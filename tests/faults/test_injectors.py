"""FaultInjector: per-channel rates, determinism, and the strict no-op."""

import numpy as np
import pytest

from repro.faults import AntennaBlackout, FaultInjector, FaultPlan
from repro.gen2.epc import EPC
from repro.radio.measurement import TagObservation


def make_obs(i, t=0.0, antenna=0, phase=1.0):
    """A synthetic report for feeding the injector directly."""
    return TagObservation(
        epc=EPC(i % 65536, 16),
        time_s=t,
        phase_rad=phase,
        rss_dbm=-50.0,
        antenna_index=antenna,
        channel_index=0,
    )


def batch(n, t0=0.0, dt=0.01, antenna=0):
    return [make_obs(i, t=t0 + i * dt, antenna=antenna) for i in range(n)]


# -- strict no-op ------------------------------------------------------------


def test_zero_plan_is_strict_noop():
    """FaultPlan.none() returns the very same objects, in order."""
    injector = FaultInjector(FaultPlan.none(), seed=5)
    observations = batch(50)
    out = injector.apply_round(observations)
    assert len(out) == len(observations)
    assert all(a is b for a, b in zip(out, observations))
    assert injector.flush_held() == []
    assert injector.take_disconnect(0.0, 1e9) is None


def test_zero_plan_draws_no_randomness():
    """Channel streams stay untouched by a zero plan (bit-level guarantee)."""
    injector = FaultInjector(FaultPlan.none(), seed=5)
    before = {
        name: getattr(injector, name).bit_generator.state
        for name in (
            "_rng_loss",
            "_rng_burst",
            "_rng_phase",
            "_rng_duplicate",
            "_rng_delay",
            "_rng_reorder",
        )
    }
    for _ in range(5):
        injector.apply_round(batch(40))
    after = {
        name: getattr(injector, name).bit_generator.state
        for name in before
    }
    assert before == after


# -- statistical rates -------------------------------------------------------


def _loss_rate(plan, n=2000, seed=7):
    injector = FaultInjector(plan, seed=seed)
    out = injector.apply_round(batch(n))
    return 1.0 - len(out) / n


def test_iid_loss_rate_within_tolerance():
    """20% iid loss lands within +-0.04 of nominal over 2000 reports."""
    rate = _loss_rate(FaultPlan(report_loss=0.2))
    assert abs(rate - 0.2) < 0.04


def test_loss_extremes():
    assert _loss_rate(FaultPlan(report_loss=1.0)) == 1.0
    assert _loss_rate(FaultPlan(report_loss=0.0)) == 0.0


def test_duplicate_rate_within_tolerance():
    injector = FaultInjector(FaultPlan(duplicate=0.25), seed=7)
    n = 2000
    out = injector.apply_round(batch(n))
    rate = (len(out) - n) / n
    assert abs(rate - 0.25) < 0.04
    # Duplicates are delivered back-to-back with identical payloads.
    values = [o.epc.value for o in out]
    assert any(a == b for a, b in zip(values, values[1:]))


def test_phase_spike_rate_and_wrap():
    plan = FaultPlan(phase_spike=0.3, phase_spike_std_rad=2.0)
    injector = FaultInjector(plan, seed=7)
    observations = batch(2000)
    out = injector.apply_round(observations)
    assert len(out) == len(observations)  # spikes never drop reports
    changed = sum(
        1 for a, b in zip(observations, out) if a.phase_rad != b.phase_rad
    )
    assert abs(changed / len(observations) - 0.3) < 0.04
    assert all(0.0 <= o.phase_rad < 2 * np.pi for o in out)
    assert injector.metrics.value("faults.phase_spikes") == changed


def test_burst_losses_are_bursty():
    """Gilbert-Elliott drops cluster: mean run length ~= 1/burst_exit."""
    plan = FaultPlan(burst_enter=0.05, burst_exit=0.2)
    injector = FaultInjector(plan, seed=7)
    observations = batch(5000)
    out_ids = {id(o) for o in injector.apply_round(observations)}
    dropped = [id(o) not in out_ids for o in observations]
    runs = []
    current = 0
    for flag in dropped:
        if flag:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    assert runs, "no burst ever fired at enter=0.05 over 5000 reports"
    mean_run = float(np.mean(runs))
    # Geometric(exit=0.2) has mean 5; allow generous statistical slack.
    assert 3.0 < mean_run < 8.0
    assert injector.metrics.value("faults.dropped_burst") == sum(
        r for r in runs
    )


# -- structural faults -------------------------------------------------------


def test_blackout_drops_only_matching_antenna_and_window():
    plan = FaultPlan(blackouts=(AntennaBlackout(0, 1.0, 2.0),))
    injector = FaultInjector(plan, seed=7)
    inside = [make_obs(i, t=1.5, antenna=0) for i in range(5)]
    other_antenna = [make_obs(i, t=1.5, antenna=1) for i in range(5)]
    outside = [make_obs(i, t=2.5, antenna=0) for i in range(5)]
    out = injector.apply_round(inside + other_antenna + outside)
    assert out == other_antenna + outside
    assert injector.metrics.value("faults.dropped_blackout") == 5


def test_delay_holds_reports_until_next_batch():
    injector = FaultInjector(FaultPlan(delay=1.0), seed=7)
    first = batch(4, t0=0.0)
    second = batch(4, t0=1.0)
    assert injector.apply_round(first) == []
    # Round 1's held reports flush now; round 2's are held in turn.
    assert injector.apply_round(second) == first
    held = injector.flush_held()
    assert held == second
    assert injector.flush_held() == []
    assert injector.metrics.value("faults.delayed") == 8


def test_partial_delay_flushes_ahead_of_fresh_batch():
    injector = FaultInjector(FaultPlan(delay=0.5), seed=7)
    first = batch(40, t0=0.0)
    second = batch(40, t0=1.0)
    out1 = injector.apply_round(first)
    held_count = len(first) - len(out1)
    assert 0 < held_count < len(first)
    out2 = injector.apply_round(second)
    # Held reports from round 1 are delivered before round 2's survivors.
    delivered_old = [o for o in out2 if o.time_s < 1.0]
    assert len(delivered_old) == held_count
    assert out2[: len(delivered_old)] == delivered_old


def test_reorder_is_a_permutation():
    injector = FaultInjector(FaultPlan(reorder=1.0), seed=7)
    observations = batch(20)
    out = injector.apply_round(observations)
    assert out != observations  # 20 elements: identity is (astronomically) unlikely
    assert sorted(o.epc.value for o in out) == sorted(
        o.epc.value for o in observations
    )
    assert injector.metrics.value("faults.reordered_rounds") == 1


# -- disconnects -------------------------------------------------------------


def test_disconnects_fire_once_each_in_order():
    injector = FaultInjector(FaultPlan(disconnect_at_s=(2.0, 5.0)), seed=7)
    assert injector.take_disconnect(0.0, 1.0) is None
    assert injector.take_disconnect(1.0, 3.0) == 2.0
    assert injector.take_disconnect(1.0, 3.0) is None  # consumed
    assert injector.take_disconnect(3.0, 10.0) == 5.0
    assert injector.pending_disconnects == ()
    assert injector.metrics.value("faults.disconnects") == 2


def test_disconnect_window_is_half_open():
    injector = FaultInjector(FaultPlan(disconnect_at_s=(2.0,)), seed=7)
    assert injector.take_disconnect(2.0, 3.0) is None  # start exclusive
    assert injector.take_disconnect(1.0, 2.0) == 2.0  # end inclusive


# -- determinism and channel independence ------------------------------------


def test_same_seed_same_draws():
    plan = FaultPlan(report_loss=0.3, phase_spike=0.2, duplicate=0.1)
    a = FaultInjector(plan, seed=13)
    b = FaultInjector(plan, seed=13)
    obs = batch(500)
    out_a = a.apply_round(obs)
    out_b = b.apply_round(obs)
    assert out_a == out_b
    assert a.metrics.to_json() == b.metrics.to_json()


def test_different_seed_different_draws():
    plan = FaultPlan(report_loss=0.3)
    obs = batch(500)
    out_a = FaultInjector(plan, seed=13).apply_round(obs)
    out_b = FaultInjector(plan, seed=14).apply_round(obs)
    assert [o.epc.value for o in out_a] != [o.epc.value for o in out_b]


def test_channels_are_independent():
    """Enabling phase spikes must not change which reports get lost."""
    obs = batch(1000)
    lost_plain = {
        o.epc.value
        for o in FaultInjector(FaultPlan(report_loss=0.2), seed=13).apply_round(obs)
    }
    lost_with_spikes = {
        o.epc.value
        for o in FaultInjector(
            FaultPlan(report_loss=0.2, phase_spike=0.5), seed=13
        ).apply_round(obs)
    }
    assert lost_plain == lost_with_spikes


def test_metrics_conservation():
    """Every report is delivered once, dropped once, or still held."""
    plan = FaultPlan(report_loss=0.2, duplicate=0.1, delay=0.1)
    injector = FaultInjector(plan, seed=13)
    for t0 in range(5):
        injector.apply_round(batch(200, t0=float(t0)))
    m = injector.metrics
    held_now = len(injector.flush_held())
    assert m.value("faults.reports_in") + m.value("faults.duplicates") == (
        m.value("faults.reports_out")
        + m.value("faults.dropped_loss")
        + held_now
    )
    assert held_now <= m.value("faults.delayed")
