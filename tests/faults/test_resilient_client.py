"""ResilientLLRPClient + FaultyReader end to end, incl. acceptance criteria.

The issue's acceptance scenarios live here:

- a seeded FaultPlan run is bit-reproducible (identical metrics JSON and
  observation traces for the same seed);
- under 20% report loss plus one mid-run disconnect, Tagwatch completes
  without exceptions and the metrics export shows retries/backoff occurred
  and IRR degraded gracefully;
- when the client exhausts retries (or the breaker opens), the cycle is
  marked degraded instead of crashing the middleware.
"""

import numpy as np
import pytest

from repro.core import TagwatchConfig, TagwatchMonitor
from repro.experiments.harness import build_lab
from repro.faults import FaultPlan
from repro.reader import CircuitOpenError, ReaderConnectionError, RetryPolicy
from repro.reader.resilience import ResilientLLRPClient

FAULT_CONFIG = TagwatchConfig(
    phase2_duration_s=0.5,
    min_phase1_fraction=0.5,
    population_grace_cycles=2,
)


def run_cycles(fault_plan, n_cycles=3, retry_policy=None, seed=23):
    """Build a (possibly faulted) lab, warm up, run cycles; return all state."""
    setup = build_lab(
        n_tags=10,
        n_mobile=1,
        seed=seed,
        partition=True,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )
    tagwatch = setup.tagwatch(FAULT_CONFIG)
    tagwatch.warm_up(4.0)
    monitor = TagwatchMonitor(window=n_cycles)
    results = []
    for _ in range(n_cycles):
        result = tagwatch.run_cycle()
        monitor.record(result)
        results.append(result)
    return setup, results, monitor


def trace_of(results):
    """Flat, rounded observation trace across all cycles."""
    rows = []
    for r in results:
        for obs in r.phase1_observations + r.phase2_observations:
            rows.append(
                (
                    obs.epc.value,
                    round(obs.time_s, 9),
                    round(obs.phase_rad, 9),
                    round(obs.rss_dbm, 9),
                    obs.antenna_index,
                    obs.channel_index,
                )
            )
    return rows


# -- retry behaviour ---------------------------------------------------------


def test_backoff_schedule_is_capped_exponential():
    policy = RetryPolicy(
        base_backoff_s=0.1,
        backoff_multiplier=2.0,
        max_backoff_s=0.5,
        jitter=0.0,
    )
    rng = np.random.default_rng(0)
    values = [policy.backoff_s(i, rng) for i in range(1, 6)]
    assert values == [0.1, 0.2, 0.4, 0.5, 0.5]
    with pytest.raises(ValueError):
        policy.backoff_s(0, rng)


def test_backoff_jitter_bounds():
    policy = RetryPolicy(base_backoff_s=1.0, jitter=0.25)
    rng = np.random.default_rng(0)
    samples = [policy.backoff_s(1, rng) for _ in range(200)]
    assert all(1.0 <= s <= 1.25 for s in samples)
    assert max(samples) > min(samples)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff_s=2.0, max_backoff_s=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(breaker_threshold=0)


def test_disconnect_is_retried_and_survived():
    """A single scheduled disconnect costs a retry, not the run."""
    plan = FaultPlan(disconnect_at_s=(5.0,))
    setup, results, _ = run_cycles(plan)
    metrics = setup.metrics
    assert metrics.value("faults.disconnects") == 1
    assert metrics.value("client.connection_errors") == 1
    assert metrics.value("client.retries") == 1
    assert metrics.value("client.reconnects") >= 1
    assert metrics.histogram("client.backoff_s").count == 1
    assert metrics.histogram("client.backoff_s").total > 0
    # The operation was retried successfully: nothing was abandoned and no
    # cycle had to degrade.
    assert metrics.value("client.operations_abandoned", 0) == 0
    assert not any(r.degraded for r in results)


def test_exhausted_retries_degrade_the_cycle():
    """With one attempt and a wall of disconnects, cycles degrade gracefully."""
    plan = FaultPlan(disconnect_at_s=tuple(np.arange(4.1, 40.0, 0.2)))
    policy = RetryPolicy(
        max_attempts=1, breaker_threshold=1000, base_backoff_s=0.05
    )
    setup, results, _ = run_cycles(plan, retry_policy=policy)
    metrics = setup.metrics
    assert metrics.value("client.operations_abandoned") >= 1
    assert metrics.value("tagwatch.failed_operations") >= 1
    assert any(r.degraded for r in results)


def test_circuit_breaker_fails_fast():
    """After the threshold, operations are rejected without reader traffic."""
    plan = FaultPlan(disconnect_at_s=tuple(np.arange(4.1, 20.0, 0.05)))
    policy = RetryPolicy(
        max_attempts=1,
        breaker_threshold=2,
        breaker_cooldown_s=1000.0,
        base_backoff_s=0.05,
    )
    setup, results, _ = run_cycles(plan, retry_policy=policy)
    metrics = setup.metrics
    assert metrics.value("client.circuit_opened") >= 1
    assert metrics.value("client.breaker_rejections") >= 1
    assert any(r.degraded for r in results)


def test_circuit_open_error_is_a_connection_error():
    assert issubclass(CircuitOpenError, ReaderConnectionError)


def test_healthy_reader_draws_no_rng_and_keeps_clock():
    """With no faults, the resilient client is bit-inert."""
    setup, _, _ = run_cycles(FaultPlan.none())
    metrics = setup.metrics
    assert metrics.value("client.retries", 0) == 0
    assert metrics.value("client.reconnects", 0) == 0
    assert metrics.value("client.connection_errors", 0) == 0
    assert metrics.value("client.rospecs_completed") > 0


# -- acceptance: bit-reproducibility ----------------------------------------


def test_faulted_run_is_bit_reproducible():
    """Same seed, same plan: identical metrics JSON and observation traces."""
    plan = FaultPlan(report_loss=0.2, disconnect_at_s=(5.0,))
    setup_a, results_a, _ = run_cycles(plan)
    setup_b, results_b, _ = run_cycles(plan)
    assert setup_a.metrics.to_json() == setup_b.metrics.to_json()
    assert trace_of(results_a) == trace_of(results_b)


def test_noop_plan_matches_unfaulted_baseline():
    """Loss 0 through the full fault stack is identical to no stack at all."""
    faulted_setup, faulted_results, _ = run_cycles(FaultPlan.none())
    plain_setup, plain_results, _ = run_cycles(None)
    assert plain_setup.metrics is None  # plain lab: no fault machinery
    assert trace_of(faulted_results) == trace_of(plain_results)
    for a, b in zip(faulted_results, plain_results):
        assert a.target_epc_values == b.target_epc_values
        assert a.fallback == b.fallback
        assert round(a.phase2_end_s, 9) == round(b.phase2_end_s, 9)


# -- acceptance: graceful degradation ---------------------------------------


def test_lossy_disconnecting_run_completes_and_degrades_gracefully():
    """20% loss + one mid-run disconnect: no exceptions, graceful IRR."""
    plan = FaultPlan(report_loss=0.2, disconnect_at_s=(6.0,))
    setup, results, monitor = run_cycles(plan, n_cycles=4)
    metrics = setup.metrics

    # Completed without exceptions, all cycles recorded.
    assert len(results) == 4

    # Recovery machinery demonstrably ran.
    assert metrics.value("client.retries") >= 1
    assert metrics.histogram("client.backoff_s").total > 0
    assert metrics.value("faults.dropped_loss") > 0
    assert metrics.value("faults.disconnects") == 1

    # IRR degraded gracefully: lower than the clean run, but not zero.
    clean_setup, clean_results, clean_monitor = run_cycles(None, n_cycles=4)
    irr = monitor.irr_by_tag()
    clean_irr = clean_monitor.irr_by_tag()
    mean_irr = float(np.mean([irr.get(e.value, 0.0) for e in setup.epcs]))
    mean_clean = float(
        np.mean([clean_irr.get(e.value, 0.0) for e in clean_setup.epcs])
    )
    assert mean_irr > 0.0
    assert mean_irr <= mean_clean * 1.05
    # Every tag the clean run saw is still present in the monitor's books
    # (population grace keeps lossy tags from being evicted instantly).
    assert len(irr) > 0


def test_degradation_is_monotone_under_heavy_loss():
    """90% loss delivers far fewer phase I reads than 0% loss."""
    heavy_setup, heavy_results, _ = run_cycles(FaultPlan(report_loss=0.9))
    clean_setup, clean_results, _ = run_cycles(FaultPlan.none())
    heavy_reads = sum(len(r.phase1_observations) for r in heavy_results)
    clean_reads = sum(len(r.phase1_observations) for r in clean_results)
    assert heavy_reads < clean_reads * 0.5
    assert heavy_setup.metrics.value("faults.dropped_loss") > 0


def test_confidence_fallback_fires_under_heavy_loss():
    """Phase I confidence collapse falls back to read-everything mode."""
    setup, results, _ = run_cycles(FaultPlan(report_loss=0.97), n_cycles=4)
    metrics = setup.metrics
    fallbacks = metrics.value("tagwatch.confidence_fallbacks", 0)
    degraded = [r for r in results if r.degraded]
    # With 97% loss either the confidence guard or a degraded cycle (or
    # both) must have fired; a silent "all healthy" run would be a bug.
    assert fallbacks >= 1 or degraded


def test_shared_registry_between_injector_and_client():
    """Injector and client write into one registry (one export shows both)."""
    plan = FaultPlan(report_loss=0.2, disconnect_at_s=(5.0,))
    setup, _, _ = run_cycles(plan)
    names = set(setup.metrics.names())
    assert any(n.startswith("faults.") for n in names)
    assert any(n.startswith("client.") for n in names)
    client = setup.client()
    assert isinstance(client, ResilientLLRPClient)
    assert client.metrics is setup.metrics


class TestPerReaderBackoffJitter:
    """Fleet clients must not retry in lockstep (thundering herd)."""

    def draws(self, reader_id, seed=23, n=6):
        from repro.experiments.harness import build_lab

        setup = build_lab(n_tags=4, n_mobile=0, seed=seed, partition=False)
        client = ResilientLLRPClient(
            setup.reader, seed=seed, reader_id=reader_id
        )
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5)
        return [policy.backoff_s(i + 1, client._rng) for i in range(n)]

    def test_same_seed_different_readers_jitter_apart(self):
        assert self.draws(reader_id=0) != self.draws(reader_id=1)

    def test_per_reader_streams_are_reproducible(self):
        assert self.draws(reader_id=3) == self.draws(reader_id=3)

    def test_default_namespace_is_unchanged(self):
        """No reader_id means the historical stream: single-reader runs
        (and every committed golden) stay bit-identical."""
        from repro.util.rng import derive_rng

        legacy = derive_rng(23, "client.backoff")
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5)
        expected = [policy.backoff_s(i + 1, legacy) for i in range(6)]
        assert self.draws(reader_id=None) == expected
