"""Tests for the detection-latency driver."""

import pytest

from repro.experiments import latency


@pytest.fixture(scope="module")
def result():
    return latency.run(phase2_durations_s=(0.5, 2.0), n_trials=3, seed=97)


class TestLatency:
    def test_latency_bounded_by_cycle(self, result):
        for phase2, maximum in zip(
            result.phase2_durations_s, result.max_latency_s
        ):
            # Worst case: onset right after a Phase I, caught at the next
            # one — about one Phase II plus assessment slack.
            assert maximum <= phase2 + 1.0

    def test_longer_phase2_higher_latency(self, result):
        assert result.mean_latency_s[-1] > result.mean_latency_s[0]

    def test_report_renders(self, result):
        assert "Detection latency" in latency.format_report(result)
