"""Tests for the one-shot reproduction report."""

import pytest

from repro.experiments import report


class TestRun:
    def test_only_filter(self):
        results = report.run(scale="smoke", only=["fig3"])
        assert len(results) == 1
        assert results[0].figure_id == "fig3"
        assert "TrackPoint" in results[0].body
        assert results[0].wall_s > 0

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            report.run(scale="huge")

    def test_unknown_only(self):
        with pytest.raises(ValueError):
            report.run(scale="smoke", only=["fig99"])


class TestMarkdown:
    def test_document_shape(self):
        results = report.run(scale="smoke", only=["fig3", "fig8"])
        document = report.to_markdown(results, "smoke")
        assert document.startswith("# Reproduction report")
        assert document.count("## ") == 2
        assert "```" in document
