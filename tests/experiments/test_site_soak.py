"""Site chaos soak: the issue's acceptance criteria, executable.

- the default soak injects >= 10 reader deaths (each with a rejoin)
  across a 6-reader site with mobile tags crossing zones, and finishes
  with zero invariant violations and the failover SLO met;
- the whole report is byte-identical across ``workers=1`` and
  ``workers=4``;
- the seeded fault plan replays exactly.
"""

import pytest

from repro.experiments import site_soak


@pytest.fixture(scope="module")
def default_report():
    """One full-scale soak, shared by the acceptance assertions below."""
    return site_soak.run(site_soak.SiteSoakConfig(), workers=4)


SMOKE = site_soak.SiteSoakConfig(
    n_readers=3, n_tags=24, n_mobile=2, n_epochs=12, n_outages=2,
    n_degradations=1, n_jams=1,
)


class TestFaultPlan:
    def test_plan_is_seed_deterministic(self):
        config = site_soak.SiteSoakConfig()
        assert site_soak.build_fault_plan(config) == site_soak.build_fault_plan(
            config
        )
        reseeded = site_soak.SiteSoakConfig(seed=1)
        assert site_soak.build_fault_plan(config) != site_soak.build_fault_plan(
            reseeded
        )

    def test_every_death_can_rejoin_before_the_horizon(self):
        config = site_soak.SiteSoakConfig()
        outages = site_soak.config_outages(config)
        assert len(outages) == config.n_outages
        for outage in outages:
            assert outage.up_at_s <= config.horizon_s - 2 * config.epoch_s

    def test_deaths_spread_across_the_fleet(self):
        config = site_soak.SiteSoakConfig()
        hit = {o.reader_id for o in site_soak.config_outages(config)}
        assert len(hit) == config.n_readers  # 10 outages over 6 readers


class TestAcceptance:
    def test_chaos_scale_and_convergence(self, default_report):
        report = default_report
        config = site_soak.SiteSoakConfig()
        assert report.n_deaths >= 10
        assert report.n_rejoins >= 10
        assert report.violations == []
        assert report.failover_ok
        assert report.min_coverage >= config.coverage_floor
        assert report.health_status == "ok"
        assert report.ok
        # Every injected outage produced an incident record.
        assert len(report.incidents) >= config.n_outages

    def test_mobile_tags_cross_reader_zones(self, default_report):
        """At least one mobile tag was fused from two different readers."""
        from repro.site.site import (
            mobile_tag_indices,
            site_epcs,
        )

        config = site_soak.build_site_config(site_soak.SiteSoakConfig())
        epcs = site_epcs(config)
        mobile_values = [
            epcs[i].value for i in sorted(mobile_tag_indices(config))
        ]
        multi_reader = [
            value
            for value in mobile_values
            if value in set(default_report.fusion.epc_values())
            and len(default_report.fusion.record(value).reader_ids) >= 2
        ]
        assert multi_reader, "no mobile tag was ever seen by two readers"

    def test_report_serialises(self, default_report):
        payload = default_report.to_dict()
        assert payload["ok"] is True
        assert payload["n_deaths"] == default_report.n_deaths
        table = site_soak.format_report(
            site_soak.SiteSoakConfig(), default_report
        )
        assert "rejoins" in table and "status" in table


class TestDeterminism:
    def test_workers_byte_identical(self):
        sequential = site_soak.run(SMOKE, workers=1)
        sharded = site_soak.run(SMOKE, workers=4)
        assert sequential.canonical_bytes() == sharded.canonical_bytes()

    def test_same_seed_same_bytes(self):
        first = site_soak.run(SMOKE, workers=2)
        second = site_soak.run(SMOKE, workers=2)
        assert first.canonical_bytes() == second.canonical_bytes()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            site_soak.SiteSoakConfig(n_readers=0)
        with pytest.raises(ValueError):
            site_soak.SiteSoakConfig(layout="grid")
        with pytest.raises(ValueError):
            site_soak.SiteSoakConfig(downtime_min_s=2.0, downtime_max_s=1.0)

    def test_staleness_bound_tracks_the_worst_outage(self):
        config = site_soak.SiteSoakConfig()
        assert config.staleness_bound_s == pytest.approx(
            config.downtime_max_s + config.epoch_s + config.staleness_slack_s
        )
