"""Tests for the design-choice ablation drivers."""

import pytest

from repro.experiments import ablations


class TestChannelKeying:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_channel_keying(
            n_tags=5, duration_s=40.0, warmup_s=25.0, seed=47
        )

    def test_keyed_models_control_fpr(self, result):
        assert result.fpr_keyed < 0.05

    def test_merged_models_worse(self, result):
        assert result.fpr_merged > 2 * result.fpr_keyed

    def test_report_renders(self, result):
        assert "keying" in ablations.format_channel_keying(result)


class TestVoteRule:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_vote_rule(n_tags=12, n_cycles=4, seed=53)

    def test_both_rules_detect_mobile(self, result):
        for _, targeting_rate, _ in result.rows:
            assert targeting_rate >= 0.75

    def test_report_renders(self, result):
        assert "vote" in ablations.format_vote_rule(result)


class TestPhase2Sweep:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_phase2_sweep(
            durations_s=(0.5, 2.0), n_tags=12, seed=59
        )

    def test_longer_phase2_raises_irr(self, result):
        assert result.mobile_irr_hz[-1] > result.mobile_irr_hz[0]

    def test_longer_phase2_raises_latency(self, result):
        assert result.detection_latency_s[-1] > result.detection_latency_s[0]

    def test_report_renders(self, result):
        assert "Phase II" in ablations.format_phase2_sweep(result)
