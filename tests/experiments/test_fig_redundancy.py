"""The redundancy experiment: qualitative tradeoff + golden regression.

Acceptance shape from the multi-session paper: going 1 -> 2 -> 4
overlapping readers, the missed-tag rate strictly falls (independent
sessions multiply miss probabilities) while per-reader throughput strictly
falls (each neighbour is an RF aggressor) — and the whole result is
bit-identical between sequential and sharded execution.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import fig_redundancy

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

SMOKE = dict(overlaps=(1, 2, 4), n_tags=60, duration_s=0.12, seed=7)


@pytest.fixture(scope="module")
def result():
    return fig_redundancy.run()


class TestTradeoff:
    def test_missed_rate_strictly_decreasing(self, result):
        assert result.monotone_reliability
        missed = [p.missed_rate for p in result.points]
        assert all(b < a for a, b in zip(missed, missed[1:]))

    def test_per_reader_throughput_strictly_decreasing(self, result):
        assert result.monotone_throughput_cost

    def test_aggregate_throughput_still_grows(self, result):
        # Redundancy costs each reader, but the site still reads more.
        rates = [p.aggregate_irr_hz for p in result.points]
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_interference_grows_with_density(self, result):
        losses = [p.extra_read_loss for p in result.points]
        assert losses[0] == 0.0
        assert all(b > a for a, b in zip(losses, losses[1:]))

    def test_point_lookup(self, result):
        assert result.point(2).n_readers == 2
        with pytest.raises(KeyError):
            result.point(99)

    def test_report_renders(self, result):
        text = fig_redundancy.format_report(result)
        assert "Redundancy vs throughput" in text
        assert "reads/s per reader" in text


def test_sharded_run_identical_to_sequential():
    sequential = fig_redundancy.run(workers=1, **SMOKE)
    sharded = fig_redundancy.run(workers=4, **SMOKE)
    assert sequential.to_dict() == sharded.to_dict()


def test_golden_redundancy(update_golden):
    """The full default sweep replays byte-identically (sharded).

    Regenerate after an intentional behaviour change with::

        PYTHONPATH=src python -m pytest \
            tests/experiments/test_fig_redundancy.py --update-golden
    """
    payload = fig_redundancy.run(workers=2).to_dict()
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path = GOLDEN_DIR / "fig_redundancy.json"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        return
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing; generate it with --update-golden"
        )
    assert path.read_text() == text, (
        "fig_redundancy diverged from golden file; if the change is "
        "intentional, regenerate with --update-golden"
    )
