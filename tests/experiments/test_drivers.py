"""Smoke-scale runs of every figure driver, checking the paper's claims
directionally (benchmarks run the full-scale versions)."""

import numpy as np
import pytest

from repro.experiments import (
    fig01_tracking,
    fig02_irr,
    fig03_trace,
    fig08_gmm,
    fig12_roc,
    fig13_sensitivity,
    fig14_learning,
    fig15_feasibility,
    fig17_cost,
    fig18_gain,
)


class TestFig02:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02_irr.run(
            tag_counts=(1, 5, 10, 20), initial_qs=(4,), repeats=6, seed=1
        )

    def test_irr_decreases_with_population(self, result):
        irr = result.curves[0].irr_hz
        assert irr[0] > irr[-1]

    def test_large_drop(self, result):
        assert result.drop_fraction > 0.5

    def test_fitted_constants_plausible(self, result):
        assert 0.010 < result.fitted.tau0_s < 0.030
        assert 0.0001 < result.fitted.tau_bar_s < 0.0008

    def test_model_tracks_measurement(self, result):
        measured = np.array(result.curves[0].irr_hz)
        model = np.array(result.model_irr_hz)
        assert np.all(np.abs(measured - model) / measured < 0.5)

    def test_report_renders(self, result):
        assert "Fig 2" in fig02_irr.format_report(result)


class TestFig03:
    @pytest.fixture(scope="class")
    def result(self):
        return fig03_trace.run(seed=13)

    def test_headline_stats(self, result):
        assert result.top_tag_reads == 90_000
        assert result.reads_at_top_10pct > 500
        assert result.conveyed_mean_reads < 5

    def test_report_renders(self, result):
        assert "TrackPoint" in fig03_trace.format_report(result)


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08_gmm.run(duration_s=25.0, seed=5)

    def test_multimodal(self, result):
        assert len(result.modes) >= 2

    def test_reliable_mode_exists(self, result):
        assert result.n_reliable_modes >= 1

    def test_report_renders(self, result):
        assert "Fig 8" in fig08_gmm.format_report(result)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_roc.run(
            n_stationary=10,
            n_people=2,
            monitor_duration_s=40.0,
            mobile_duration_s=15.0,
            seed=11,
        )

    def test_phase_mog_dominates(self, result):
        phase_mog = result.curves["Phase-MoG"]
        assert phase_mog.tpr_at_fpr(0.2) > 0.9

    def test_phase_beats_rss(self, result):
        assert (
            result.curves["Phase-MoG"].auc > result.curves["Rss-MoG"].auc
        )

    def test_mog_beats_differencing_at_low_fpr(self, result):
        assert result.curves["Phase-MoG"].tpr_at_fpr(0.1) >= result.curves[
            "Phase-differencing"
        ].tpr_at_fpr(0.1)

    def test_report_renders(self, result):
        assert "ROC" in fig12_roc.format_report(result)


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_sensitivity.run(
            displacements_cm=(1.0, 3.0, 5.0), trials=6, settle_s=6.0, seed=13
        )

    def test_phase_sensitive_at_small_displacement(self, result):
        assert result.phase_detection_rate[0] > 0.5

    def test_phase_near_perfect_at_3cm(self, result):
        assert result.phase_detection_rate[1] > 0.8

    def test_rss_insensitive_at_1cm(self, result):
        assert result.rss_detection_rate[0] < 0.5

    def test_phase_beats_rss_everywhere(self, result):
        for phase, rss in zip(
            result.phase_detection_rate, result.rss_detection_rate
        ):
            assert phase >= rss

    def test_report_renders(self, result):
        assert "sensitivity" in fig13_sensitivity.format_report(result)


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_learning.run(duration_s=20.0, seed=17)

    def test_learning_converges(self, result):
        assert max(result.accuracy) >= 0.9

    def test_converges_within_paper_ballpark(self, result):
        """Paper: 70% accuracy by ~67 readings."""
        assert result.reads_needed(0.7) <= 90

    def test_early_accuracy_low(self, result):
        assert result.accuracy[0] < 0.5

    def test_report_renders(self, result):
        assert "learning curve" in fig14_learning.format_report(result)


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self):
        return fig15_feasibility.run(n_targets=2, duration_s=4.0, seed=19)

    def test_tagwatch_beats_read_all(self, result):
        assert result.gain("tagwatch") > 2.0

    def test_tagwatch_beats_naive(self, result):
        assert (
            result.schemes["tagwatch"].target_irr_mean_hz
            > result.schemes["naive"].target_irr_mean_hz
        )

    def test_non_targets_suppressed(self, result):
        assert (
            result.schemes["tagwatch"].nontarget_irr_mean_hz
            < result.schemes["read-all"].nontarget_irr_mean_hz
        )

    def test_report_renders(self, result):
        assert "feasibility" in fig15_feasibility.format_report(result)


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return fig17_cost.run(
            n_tags=30,
            n_mobile=2,
            n_cycles=12,
            warmup_cycles=6,
            phase2_duration_s=0.6,
            seed=23,
        )

    def test_overhead_small_vs_cycle(self, result):
        assert result.p90_ms / 1000.0 < 0.05 * result.cycle_duration_s

    def test_p50_single_digit_ms(self, result):
        assert result.p50_ms < 15.0

    def test_cdf_monotone(self, result):
        values = [v for _, v in result.cdf()]
        assert values == sorted(values)

    def test_report_renders(self, result):
        assert "overhead" in fig17_cost.format_report(result)


class TestFig18:
    @pytest.fixture(scope="class")
    def result(self):
        return fig18_gain.run(
            percents=(5.0, 20.0),
            populations=(40,),
            n_cycles=5,
            warmup_cycles=1,
            phase2_duration_s=1.0,
            seed=29,
        )

    def test_gain_positive_at_low_percent(self, result):
        assert result.median_gain(5.0, "greedy") > 1.5

    def test_gain_shrinks_with_percent(self, result):
        assert result.median_gain(20.0, "greedy") < result.median_gain(
            5.0, "greedy"
        )

    def test_tagwatch_not_worse_than_naive(self, result):
        for percent in result.percents:
            assert (
                result.median_gain(percent, "greedy")
                >= result.median_gain(percent, "naive") - 0.2
            )

    def test_report_renders(self, result):
        assert "IRR gain" in fig18_gain.format_report(result)


class TestFig01:
    @pytest.fixture(scope="class")
    def result(self):
        return fig01_tracking.run(
            stationary_counts=(0, 14), duration_s=4.0, seed=31
        )

    def test_accuracy_degrades_with_contention(self, result):
        clean = result.case("read-all (1+0)")
        crowded = result.case("read-all (1+14)")
        assert crowded.mean_error_cm > 2 * clean.mean_error_cm

    def test_tagwatch_restores_accuracy(self, result):
        tagwatch = result.case("tagwatch (1+14)")
        crowded = result.case("read-all (1+14)")
        assert tagwatch.mean_error_cm < crowded.mean_error_cm / 2

    def test_tagwatch_restores_rate(self, result):
        tagwatch = result.case("tagwatch (1+14)")
        crowded = result.case("read-all (1+14)")
        assert tagwatch.mobile_irr_hz > 1.5 * crowded.mobile_irr_hz

    def test_report_renders(self, result):
        assert "tracking accuracy" in fig01_tracking.format_report(result)


class TestFusionExtension:
    def test_fusion_detector_in_roc(self):
        result = fig12_roc.run(
            n_stationary=8,
            n_people=1,
            monitor_duration_s=30.0,
            mobile_duration_s=12.0,
            seed=11,
            include_fusion=True,
        )
        fusion = result.curves["Fusion (phase+RSS MoG)"]
        phase_mog = result.curves["Phase-MoG"]
        # The documented *negative* result: max-fusion imports RSS's false
        # positives and cannot beat phase alone — the measured ground for
        # the paper's phase-only design.
        assert fusion.auc <= phase_mog.auc + 1e-9
