"""Tests for the deterministic parallel experiment runner.

The runner's one promise: ``workers=N`` is indistinguishable from
``workers=1`` — same results in the same order, same merged trace — because
every task is seeded by its arguments and the merge is positional.
"""

import numpy as np
import pytest

from repro.experiments import fault_sweep, fig02_irr
from repro.experiments.parallel import (
    parallel_map,
    resolve_workers,
    spawn_seeds,
)
from repro.obs.exporters import to_jsonl
from repro.obs.tracer import Span, Tracer, get_tracer, use_tracer


class TestResolveWorkers:
    def test_sequential_spellings(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_explicit_count(self):
        assert resolve_workers(3) == 3

    def test_negative_means_all_cores(self):
        assert resolve_workers(-1) >= 1


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(42, 5) == spawn_seeds(42, 5)

    def test_distinct_across_parent_and_siblings(self):
        seeds = spawn_seeds(42, 5)
        assert len(set(seeds)) == 5
        assert 42 not in seeds

    def test_prefix_stable(self):
        # Spawning more replicas later must not reshuffle the earlier ones.
        assert spawn_seeds(7, 5)[:2] == spawn_seeds(7, 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)


def _square(x):
    return x * x


def _draw(seed):
    return int(np.random.default_rng(seed).integers(0, 2**32))


class TestParallelMap:
    def test_results_in_task_order(self):
        tasks = [(i,) for i in range(10)]
        assert parallel_map(_square, tasks, workers=1) == [
            i * i for i in range(10)
        ]
        assert parallel_map(_square, tasks, workers=3) == [
            i * i for i in range(10)
        ]

    def test_bare_items_promoted_to_tuples(self):
        assert parallel_map(_square, [2, 3], workers=1) == [4, 9]

    def test_seeded_tasks_identical_across_worker_counts(self):
        tasks = [(s,) for s in spawn_seeds(11, 6)]
        assert parallel_map(_draw, tasks, workers=1) == parallel_map(
            _draw, tasks, workers=4
        )


def _trace_signature(tracer):
    out = []
    for r in tracer.records:
        if isinstance(r, Span):
            out.append(
                ("S", r.span_id, r.parent_id, r.depth, r.name, r.start_s,
                 r.end_s, tuple(sorted(r.args.items())))
            )
        else:
            out.append(
                ("E", r.event_id, r.parent_id, r.name, r.t_s,
                 tuple(sorted(r.args.items())))
            )
    return out


class TestDriverEquivalence:
    def test_fig02_identical_and_trace_merged(self):
        kwargs = dict(tag_counts=(1, 5), initial_qs=(4,), repeats=2)
        t1, t2 = Tracer(), Tracer()
        with use_tracer(t1):
            r1 = fig02_irr.run(workers=1, **kwargs)
        with use_tracer(t2):
            r2 = fig02_irr.run(workers=2, **kwargs)
        assert [c.round_durations_s for c in r1.curves] == [
            c.round_durations_s for c in r2.curves
        ]
        assert r1.model_irr_hz == r2.model_irr_hz
        assert _trace_signature(t1) == _trace_signature(t2)

    def test_fault_sweep_identical(self):
        kwargs = dict(loss_rates=(0.0, 0.3), n_cycles=2, warmup_s=4.0)
        r1 = fault_sweep.run(workers=1, **kwargs)
        r2 = fault_sweep.run(workers=2, **kwargs)
        assert r1.points == r2.points


class TestTracerAbsorb:
    def test_ids_remapped_past_existing(self):
        parent = Tracer()
        span = parent.begin("own", t=0.0)
        parent.end(span, t=1.0)

        worker = Tracer()
        outer = worker.begin("outer", t=0.0)
        worker.event("ping", t=0.5)
        worker.end(outer, t=1.0)

        parent.absorb(worker.records)
        names = [r.name for r in parent.records]
        assert names == ["own", "ping", "outer"]
        ids = [
            r.span_id if isinstance(r, Span) else r.event_id
            for r in parent.records
        ]
        assert len(set(ids)) == 3
        # The absorbed event keeps its parent link to the absorbed span.
        ping = parent.records[1]
        outer_absorbed = parent.records[2]
        assert ping.parent_id == outer_absorbed.span_id
        # Roots stay roots, and the next fresh id does not collide.
        assert outer_absorbed.parent_id == 0
        fresh = parent.begin("after", t=2.0)
        assert fresh.span_id not in ids

    def test_absorb_empty_is_noop(self):
        tracer = Tracer()
        tracer.absorb([])
        assert tracer.records == []

    def test_batch_roots_reanchor_under_open_span(self):
        """Absorbed roots attach to the currently open span, depth-shifted.

        This is the regression the audit found: a driver that calls
        ``parallel_map`` *inside* one of its own spans used to get absorbed
        task spans parented to 0 at depth 0, while the sequential run
        nested them — so merged traces diverged between worker counts.
        """
        parent = Tracer()
        enclosing = parent.begin("sweep", t=0.0)

        worker = Tracer()
        inner = worker.begin("task", t=0.0)
        worker.event("tick", t=0.5)
        worker.end(inner, t=1.0)

        parent.absorb(worker.records)
        parent.end(enclosing, t=2.0)

        task = next(r for r in parent.records if r.name == "task")
        assert task.parent_id == enclosing.span_id
        assert task.depth == 1
        tick = next(r for r in parent.records if r.name == "tick")
        assert tick.parent_id == task.span_id


def _traced_burst(seed):
    """A task that opens a small span tree on the ambient tracer."""
    tracer = get_tracer()
    outer = tracer.begin("burst", t=0.0, seed=seed)
    inner = tracer.begin("draw", t=0.1)
    value = int(np.random.default_rng(seed).integers(0, 1000))
    tracer.event("value", t=0.2, value=value)
    tracer.end(inner, t=0.3)
    tracer.end(outer, t=0.4)
    return value


class TestTraceMergeDeterminism:
    """The merged trace is byte-stable across worker counts.

    Pins the full contract documented in :mod:`repro.experiments.parallel`:
    same ids, parents, depths, and args whether tasks ran inline, in one
    pool, or spread over several workers — both at top level and inside an
    enclosing ambient span.
    """

    WORKER_COUNTS = (1, 2, 4)

    def _run(self, workers, enclose):
        tracer = Tracer()
        tasks = [(s,) for s in spawn_seeds(23, 6)]
        with use_tracer(tracer):
            if enclose:
                span = tracer.begin("driver", t=0.0)
                results = parallel_map(_traced_burst, tasks, workers=workers)
                tracer.end(span, t=9.0)
            else:
                results = parallel_map(_traced_burst, tasks, workers=workers)
        return results, to_jsonl(tracer)

    @pytest.mark.parametrize("enclose", [False, True], ids=["flat", "nested"])
    def test_jsonl_byte_equal_across_worker_counts(self, enclose):
        reference_results, reference_export = self._run(1, enclose)
        for workers in self.WORKER_COUNTS[1:]:
            results, export = self._run(workers, enclose)
            assert results == reference_results
            assert export == reference_export, (
                f"merged trace diverged at workers={workers} "
                f"(enclosing span: {enclose})"
            )
