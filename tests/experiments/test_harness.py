"""Tests for the shared experiment harness."""

import numpy as np
import pytest

from repro.experiments.harness import (
    build_lab,
    corner_antennas,
    irr_by_tag,
    read_all_irr,
    tag_wall_positions,
)
from repro.radio.measurement import TagObservation


class TestBuilders:
    def test_corner_antennas(self):
        antennas = corner_antennas(half_span_m=3.0)
        assert len(antennas) == 4
        assert all(
            abs(a.position[0]) == 3.0 and abs(a.position[1]) == 3.0
            for a in antennas
        )

    def test_tag_wall(self):
        positions = tag_wall_positions(15, columns=5)
        assert len(positions) == 15
        assert positions[5][1] > positions[0][1]  # second row is deeper

    def test_build_lab_mobile_first(self):
        setup = build_lab(n_tags=10, n_mobile=2, seed=1)
        assert setup.mobile_indices == [0, 1]
        assert setup.scene.tags[0].is_moving_at(1.0)
        assert not setup.scene.tags[5].is_moving_at(1.0)

    def test_build_lab_rejects_excess_mobile(self):
        with pytest.raises(ValueError):
            build_lab(n_tags=2, n_mobile=3, seed=1)

    def test_partitioned_layout_limits_range(self):
        setup = build_lab(n_tags=16, n_mobile=0, seed=1, partition=True)
        for antenna_index in range(4):
            in_range = setup.scene.tags_in_range(antenna_index, 0.0)
            assert 0 < len(in_range) < 16

    def test_partitioned_covers_every_tag(self):
        setup = build_lab(n_tags=16, n_mobile=2, seed=1, partition=True)
        covered = set()
        for antenna_index in range(4):
            covered |= set(setup.scene.tags_in_range(antenna_index, 0.0))
        assert covered == set(range(16))

    def test_reproducible(self):
        a = build_lab(n_tags=5, n_mobile=1, seed=3)
        b = build_lab(n_tags=5, n_mobile=1, seed=3)
        assert [t.epc.value for t in a.scene.tags] == [
            t.epc.value for t in b.scene.tags
        ]


class TestIrrHelpers:
    def test_irr_by_tag(self):
        setup = build_lab(n_tags=4, n_mobile=0, seed=2, n_antennas=1)
        observations, _ = setup.reader.run_duration(1.0)
        irr = irr_by_tag(observations, 0.0, 1.0)
        assert all(value > 0 for value in irr.values())

    def test_irr_window_validation(self):
        with pytest.raises(ValueError):
            irr_by_tag([], 1.0, 1.0)

    def test_read_all_includes_zero_tags(self):
        setup = build_lab(n_tags=4, n_mobile=0, seed=2, n_antennas=1)
        irr, _ = read_all_irr(setup, duration_s=0.5)
        assert len(irr) == 4
