"""Tests for LLRP message structures and XML round-tripping."""

import pytest
from hypothesis import given, strategies as st

from repro.gen2.epc import EPC, MemoryBank
from repro.gen2.select import BitMask, apply_selects
from repro.reader.llrp import (
    AISpec,
    AISpecStopTrigger,
    C1G2Filter,
    ROSpec,
    read_all_rospec,
    rospec_from_xml,
    rospec_to_xml,
)


def sample_rospec():
    return ROSpec(
        rospec_id=3,
        ai_specs=(
            AISpec((1, 2), (C1G2Filter(4, "10"),), AISpecStopTrigger(n_rounds=2)),
            AISpec(
                (0,),
                (C1G2Filter(0, "0101"), C1G2Filter(9, "1")),
                AISpecStopTrigger(n_rounds=None, duration_s=1.5),
            ),
        ),
        duration_s=5.0,
    )


class TestC1G2Filter:
    def test_bitmask_round_trip(self):
        mask = BitMask.from_bits("0110", 5)
        assert C1G2Filter.from_bitmask(mask).to_bitmask() == mask

    def test_bad_mask_rejected(self):
        with pytest.raises(ValueError):
            C1G2Filter(0, "012")

    def test_negative_pointer_rejected(self):
        with pytest.raises(ValueError):
            C1G2Filter(-1, "01")


class TestAISpec:
    def test_needs_antenna(self):
        with pytest.raises(ValueError):
            AISpec((), ())

    def test_selects_union_semantics(self):
        """Multiple filters in one AISpec select the union of coverages."""
        spec = AISpec((0,), (C1G2Filter(0, "00"), C1G2Filter(0, "10")))
        epcs = [EPC.from_bits(b) for b in ("0011", "1011", "1100", "0100")]
        flags = apply_selects(spec.selects(), epcs)
        assert flags == [True, True, False, False]

    def test_no_filters_selects_everything(self):
        spec = AISpec((0,), ())
        epcs = [EPC.from_bits("0011")]
        assert apply_selects(spec.selects(), epcs) == [True]


class TestStopTrigger:
    def test_exactly_one_mode(self):
        with pytest.raises(ValueError):
            AISpecStopTrigger(n_rounds=1, duration_s=1.0)
        with pytest.raises(ValueError):
            AISpecStopTrigger(n_rounds=None, duration_s=None)

    def test_positive_values(self):
        with pytest.raises(ValueError):
            AISpecStopTrigger(n_rounds=0)
        with pytest.raises(ValueError):
            AISpecStopTrigger(n_rounds=None, duration_s=0.0)


class TestROSpec:
    def test_id_zero_reserved(self):
        with pytest.raises(ValueError):
            ROSpec(0, (AISpec((0,), ()),))

    def test_needs_aispec(self):
        with pytest.raises(ValueError):
            ROSpec(1, ())


class TestXmlRoundTrip:
    def test_full_round_trip(self):
        original = sample_rospec()
        assert rospec_from_xml(rospec_to_xml(original)) == original

    def test_no_duration(self):
        spec = read_all_rospec(1, (0, 1))
        assert rospec_from_xml(rospec_to_xml(spec)) == spec

    def test_rejects_wrong_root(self):
        with pytest.raises(ValueError):
            rospec_from_xml("<NotAROSpec/>")

    def test_xml_mentions_figure_11_fields(self):
        xml = rospec_to_xml(sample_rospec())
        for field in ("AISpec", "C1G2Filter", "C1G2TagInventoryMask"):
            assert field in xml

    @given(
        st.integers(min_value=0, max_value=2**12 - 1),
        st.integers(min_value=0, max_value=80),
    )
    def test_arbitrary_filters_round_trip(self, mask_value, pointer):
        bits = format(mask_value, "012b")
        spec = ROSpec(
            rospec_id=1,
            ai_specs=(AISpec((0,), (C1G2Filter(pointer, bits),)),),
        )
        assert rospec_from_xml(rospec_to_xml(spec)) == spec
