"""Tests for LLRP tag reporting (ROReportSpec)."""

import pytest

from repro.gen2.epc import random_epc_population
from repro.radio.constants import single_channel
from repro.reader import (
    LLRPClient,
    ReportTrigger,
    ROReportContentSelector,
    ROReportSpec,
    SimReader,
    build_reports,
)
from repro.reader.llrp import AISpec, AISpecStopTrigger, ROSpec
from repro.reader.reports import TagReportEntry
from repro.world.motion import Stationary
from repro.world.scene import Antenna, Scene, TagInstance


def make_client(n=4, seed=1):
    epcs = random_epc_population(n, rng=seed)
    tags = [
        TagInstance(epc=e, trajectory=Stationary((0.3 * i, 1.0, 0.8)))
        for i, e in enumerate(epcs)
    ]
    scene = Scene(
        [Antenna((0, 0, 1.5))], tags, channel_plan=single_channel(), seed=seed
    )
    client = LLRPClient(SimReader(scene, seed=seed + 1))
    client.connect()
    return client, epcs


def rospec_with(report_spec, rospec_id=1):
    return ROSpec(
        rospec_id=rospec_id,
        ai_specs=(AISpec((0,), (), AISpecStopTrigger(n_rounds=2)),),
        report_spec=report_spec,
    )


class TestContentSelection:
    def test_default_includes_everything(self, ):
        client, _ = make_client()
        spec = rospec_with(ROReportSpec())
        client.add_rospec(spec)
        client.enable_rospec(1)
        observations, _ = client.start_rospec(1)
        entry = TagReportEntry.from_observation(
            observations[0], ROReportContentSelector()
        )
        assert entry.phase_rad is not None
        assert entry.peak_rssi_dbm is not None
        assert entry.timestamp_s is not None

    def test_fields_withheld(self):
        client, _ = make_client()
        selector = ROReportContentSelector(
            enable_phase=False, enable_peak_rssi=False
        )
        client.add_rospec(rospec_with(ROReportSpec(content=selector)))
        client.enable_rospec(1)
        observations, _ = client.start_rospec(1)
        entry = TagReportEntry.from_observation(observations[0], selector)
        assert entry.phase_rad is None
        assert entry.peak_rssi_dbm is None
        assert entry.epc_hex  # EPC always present


class TestBatching:
    def test_n_tag_reports_batches(self):
        client, _ = make_client(n=4)
        batches = []
        client.add_entry_report_callback(batches.append)
        client.add_rospec(
            rospec_with(ROReportSpec(n_tag_reports=3))
        )
        client.enable_rospec(1)
        observations, _ = client.start_rospec(1)
        assert sum(len(b) for b in batches) == len(observations)
        assert all(len(b) <= 3 for b in batches)

    def test_end_of_rospec_single_batch(self):
        client, _ = make_client(n=4)
        batches = []
        client.add_entry_report_callback(batches.append)
        client.add_rospec(
            rospec_with(
                ROReportSpec(trigger=ReportTrigger.END_OF_ROSPEC)
            )
        )
        client.enable_rospec(1)
        observations, _ = client.start_rospec(1)
        assert len(batches) == 1
        assert len(batches[0]) == len(observations)

    def test_no_report_spec_no_entry_callbacks(self):
        client, _ = make_client()
        batches = []
        client.add_entry_report_callback(batches.append)
        client.add_rospec(rospec_with(None))
        client.enable_rospec(1)
        client.start_rospec(1)
        assert batches == []

    def test_empty_observations(self):
        assert build_reports([], ROReportSpec()) == []


class TestValidation:
    def test_n_tag_reports_positive(self):
        with pytest.raises(ValueError):
            ROReportSpec(n_tag_reports=0)
