"""Tests for the sllurp-style LLRP client."""

import pytest

from repro.gen2.epc import random_epc_population
from repro.radio.constants import single_channel
from repro.reader.client import LLRPClient, LLRPError, ReaderState
from repro.reader.llrp import read_all_rospec
from repro.reader.reader import SimReader
from repro.world.motion import Stationary
from repro.world.scene import Antenna, Scene, TagInstance


@pytest.fixture
def client():
    epcs = random_epc_population(3, rng=1)
    tags = [
        TagInstance(epc=e, trajectory=Stationary((0.3 * i, 1.0, 0.8)))
        for i, e in enumerate(epcs)
    ]
    scene = Scene(
        [Antenna((0, 0, 1.5))], tags, channel_plan=single_channel(), seed=2
    )
    return LLRPClient(SimReader(scene, seed=3))


class TestConnectionState:
    def test_initially_disconnected(self, client):
        assert client.state == ReaderState.DISCONNECTED

    def test_double_connect_rejected(self, client):
        client.connect()
        with pytest.raises(LLRPError):
            client.connect()

    def test_operations_require_connection(self, client):
        with pytest.raises(LLRPError):
            client.add_rospec(read_all_rospec(1, (0,)))


class TestROSpecLifecycle:
    def test_full_flow(self, client):
        client.connect()
        spec = read_all_rospec(1, (0,))
        client.add_rospec(spec)
        client.enable_rospec(1)
        reports, log = client.start_rospec(1)
        assert len(reports) == 3
        assert log.n_rounds == 1

    def test_duplicate_add_rejected(self, client):
        client.connect()
        client.add_rospec(read_all_rospec(1, (0,)))
        with pytest.raises(LLRPError):
            client.add_rospec(read_all_rospec(1, (0,)))

    def test_start_requires_enable(self, client):
        client.connect()
        client.add_rospec(read_all_rospec(1, (0,)))
        with pytest.raises(LLRPError):
            client.start_rospec(1)

    def test_unknown_rospec(self, client):
        client.connect()
        with pytest.raises(LLRPError):
            client.enable_rospec(99)

    def test_delete_removes(self, client):
        client.connect()
        client.add_rospec(read_all_rospec(1, (0,)))
        client.delete_rospec(1)
        assert client.rospec_ids() == []
        assert client.get_rospec(1) is None

    def test_disable(self, client):
        client.connect()
        client.add_rospec(read_all_rospec(1, (0,)))
        client.enable_rospec(1)
        client.disable_rospec(1)
        with pytest.raises(LLRPError):
            client.start_rospec(1)


class TestCallbacks:
    def test_reports_delivered(self, client):
        client.connect()
        received = []
        client.add_tag_report_callback(received.append)
        client.add_rospec(read_all_rospec(1, (0,)))
        client.enable_rospec(1)
        client.start_rospec(1)
        assert len(received) == 1
        assert len(received[0]) == 3
