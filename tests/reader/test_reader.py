"""Tests for the simulated R420 reader."""

import numpy as np
import pytest

from repro.gen2.epc import random_epc_population
from repro.gen2.select import BitMask, union_selects
from repro.radio.constants import china_920_926, single_channel
from repro.reader.llrp import AISpec, AISpecStopTrigger, ROSpec, C1G2Filter
from repro.reader.reader import SimReader
from repro.world.motion import Stationary
from repro.world.scene import Antenna, Scene, TagInstance


def make_setup(n=6, seed=0, plan=None, antenna_range=8.0):
    epcs = random_epc_population(n, rng=seed + 100)
    tags = [
        TagInstance(epc=e, trajectory=Stationary((0.3 * i, 1.5, 0.8)))
        for i, e in enumerate(epcs)
    ]
    scene = Scene(
        [
            Antenna((0, 0, 1.5), range_m=antenna_range),
            Antenna((3, 0, 1.5), range_m=antenna_range),
        ],
        tags,
        channel_plan=plan or single_channel(),
        seed=seed,
    )
    return SimReader(scene, seed=seed + 1), epcs


class TestInventoryRound:
    def test_reads_all_in_range(self):
        reader, epcs = make_setup()
        result = reader.inventory_round(0)
        assert {o.epc.value for o in result.observations} == {
            e.value for e in epcs
        }

    def test_clock_advances(self):
        reader, _ = make_setup()
        t0 = reader.time_s
        reader.inventory_round(0)
        assert reader.time_s > t0

    def test_select_filters_participants(self):
        reader, epcs = make_setup()
        mask = BitMask.full_epc(epcs[0])
        result = reader.inventory_round(0, union_selects([mask]))
        assert [o.epc.value for o in result.observations] == [epcs[0].value]

    def test_observation_times_within_round(self):
        reader, _ = make_setup()
        t0 = reader.time_s
        result = reader.inventory_round(0)
        for obs in result.observations:
            assert t0 < obs.time_s <= reader.time_s

    def test_report_callback_invoked(self):
        reader, _ = make_setup()
        seen = []
        reader.add_report_callback(seen.append)
        reader.inventory_round(0)
        assert len(seen) == 6


class TestFrequencyHopping:
    def test_hops_after_dwell(self):
        reader, _ = make_setup(plan=china_920_926(hop_dwell_s=0.05))
        first = reader.inventory_round(0).channel_index
        reader.advance_clock(0.2)
        second = reader.inventory_round(0).channel_index
        assert second != first

    def test_single_channel_never_hops(self):
        reader, _ = make_setup()
        reader.advance_clock(100.0)
        assert reader.inventory_round(0).channel_index == 0

    def test_clock_cannot_go_backwards(self):
        reader, _ = make_setup()
        with pytest.raises(ValueError):
            reader.advance_clock(-1.0)


class TestRunDuration:
    def test_cycles_antennas(self):
        reader, _ = make_setup()
        observations, _ = reader.run_duration(0.5)
        assert {o.antenna_index for o in observations} == {0, 1}

    def test_invalid_duration(self):
        reader, _ = make_setup()
        with pytest.raises(ValueError):
            reader.run_duration(0.0)


class TestExecuteRospec:
    def test_duration_stop(self):
        reader, _ = make_setup()
        rospec = ROSpec(
            rospec_id=1,
            ai_specs=(AISpec((0,), (), AISpecStopTrigger(n_rounds=1)),),
            duration_s=0.4,
        )
        t0 = reader.time_s
        reader.execute_rospec(rospec)
        assert reader.time_s >= t0 + 0.4 - 0.05

    def test_n_rounds_stop(self):
        reader, _ = make_setup()
        rospec = ROSpec(
            rospec_id=1,
            ai_specs=(AISpec((0,), (), AISpecStopTrigger(n_rounds=3)),),
        )
        _, log = reader.execute_rospec(rospec)
        assert log.n_rounds == 3

    def test_filtered_aispec(self):
        reader, epcs = make_setup()
        mask = BitMask.full_epc(epcs[2])
        rospec = ROSpec(
            rospec_id=1,
            ai_specs=(
                AISpec((0,), (C1G2Filter.from_bitmask(mask),)),
            ),
        )
        observations, _ = reader.execute_rospec(rospec)
        assert {o.epc.value for o in observations} == {epcs[2].value}


class TestDeterminism:
    def test_same_seed_same_stream(self):
        r1, _ = make_setup(seed=9)
        r2, _ = make_setup(seed=9)
        o1, _ = r1.run_duration(0.3)
        o2, _ = r2.run_duration(0.3)
        assert [(o.epc.value, o.time_s) for o in o1] == [
            (o.epc.value, o.time_s) for o in o2
        ]


class TestAntennaValidation:
    def test_unknown_antenna_rejected(self):
        reader, _ = make_setup()
        with pytest.raises(ValueError, match="antenna 7"):
            reader.inventory_round(7)

    def test_rospec_with_bad_antenna_rejected(self):
        from repro.reader.llrp import AISpec, AISpecStopTrigger, ROSpec

        reader, _ = make_setup()
        rospec = ROSpec(
            rospec_id=1,
            ai_specs=(AISpec((9,), (), AISpecStopTrigger(n_rounds=1)),),
        )
        with pytest.raises(ValueError):
            reader.execute_rospec(rospec)
