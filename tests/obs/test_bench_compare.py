"""Bench regression gate: throughput ratio and orchestration-share checks."""

from repro.obs.bench import BenchResult
from repro.obs.bench_compare import (
    BenchComparison,
    CompareReport,
    compare_result,
    format_compare,
    load_baseline,
)


def _result(slots=1000, wall=1.0, startup=1.0, slot=3.0):
    return BenchResult(
        name="fig18",
        scale="smoke",
        wall_s=wall,
        sim_s=startup + slot,
        breakdown={"round_startup_s": startup, "slot_s": slot},
        counts={"slots": slots},
    )


def test_load_baseline_missing(tmp_path):
    assert load_baseline("fig18", str(tmp_path)) is None


def test_load_baseline_resolves_tiers(tmp_path):
    """``scale`` picks the matching tier; unknown tiers fall back to top."""
    import json

    payload = _result().to_dict()
    payload["tiers"] = {
        "large": _result(slots=4000, wall=2.0).to_dict() | {"scale": "large"}
    }
    (tmp_path / "BENCH_fig18.json").write_text(json.dumps(payload))
    top = load_baseline("fig18", str(tmp_path), scale="smoke")
    assert top["counts"]["slots"] == 1000
    large = load_baseline("fig18", str(tmp_path), scale="large")
    assert large["counts"]["slots"] == 4000
    fallback = load_baseline("fig18", str(tmp_path), scale="paper")
    assert fallback["counts"]["slots"] == 1000
    assert load_baseline("fig18", str(tmp_path))["counts"]["slots"] == 1000


def test_throughput_gate_tolerates_noise_but_fails_on_regression():
    c = BenchComparison(
        name="fig18",
        baseline_slots_per_s=1000.0,
        current_slots_per_s=800.0,
        max_regression=0.25,
    )
    assert not c.regressed  # -20% is inside the 25% allowance
    c.current_slots_per_s = 700.0
    assert c.throughput_regressed and c.regressed


def test_share_gate_fails_on_orchestration_growth():
    c = BenchComparison(
        name="fig18",
        baseline_slots_per_s=1000.0,
        current_slots_per_s=1000.0,
        max_regression=0.25,
        baseline_startup_share=0.50,
        current_startup_share=0.58,
        max_share_increase=0.05,
    )
    assert not c.throughput_regressed
    assert c.share_regressed and c.regressed
    c.current_startup_share = 0.54  # inside the allowance
    assert not c.regressed


def test_share_gate_skipped_without_baseline_share():
    c = BenchComparison(
        name="fig18",
        baseline_slots_per_s=1000.0,
        current_slots_per_s=1000.0,
        max_regression=0.25,
        baseline_startup_share=None,
        current_startup_share=0.99,
    )
    assert not c.share_regressed


def test_compare_result_reads_share_from_baseline():
    baseline = _result(slots=1000, wall=1.0, startup=1.0, slot=3.0).to_dict()
    current = _result(slots=1000, wall=1.0, startup=1.0, slot=3.0)
    c = compare_result(baseline, current)
    assert c.baseline_startup_share == 0.25
    assert c.current_startup_share == 0.25
    assert not c.regressed


def test_compare_result_reconstructs_share_from_old_baseline():
    """Baselines that predate ``startup_cpu_share`` still arm the gate."""
    baseline = _result().to_dict()
    del baseline["startup_cpu_share"]
    current = _result(startup=3.0, slot=1.0)  # share 0.25 -> 0.75
    c = compare_result(baseline, current)
    assert c.baseline_startup_share == 0.25
    assert c.share_regressed


def test_run_compare_adds_the_flight_overhead_row(tmp_path, monkeypatch):
    """Flight-gated workloads get a second row against the same baseline.

    The FlightRecorder's overhead must fit inside the ordinary regression
    allowance — that is the "measured and gated" guarantee, without a
    second committed baseline to keep fresh.
    """
    import json

    from repro.obs import bench_compare

    baseline = _result().to_dict()
    (tmp_path / "BENCH_fig18.json").write_text(json.dumps(baseline))
    calls = []

    def fake_run_bench(name, scale="smoke", warmup=1, repeats=3, flight=False):
        calls.append((name, flight))
        return _result()

    monkeypatch.setattr(bench_compare, "run_bench", fake_run_bench)
    report = bench_compare.run_compare(
        names=["fig18"], baseline_dir=str(tmp_path)
    )
    assert calls == [("fig18", False), ("fig18", True)]
    assert [c.name for c in report.comparisons] == ["fig18", "fig18+flight"]
    assert report.passed

    report = bench_compare.run_compare(
        names=["fig18"], baseline_dir=str(tmp_path), flight_names=()
    )
    assert [c.name for c in report.comparisons] == ["fig18"]


def test_format_compare_reports_share_and_verdict():
    report = CompareReport(
        comparisons=[
            compare_result(_result().to_dict(), _result(startup=3.0, slot=1.0))
        ]
    )
    text = format_compare(report)
    assert "startup share" in text
    assert "REGRESSED (startup share)" in text
    assert "FAIL" in text
