"""SLO engine unit tests: window math, latching, telemetry, monotonicity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.health.slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    SloEngine,
    SloSpec,
    SloTracker,
)
from repro.obs.tracer import Tracer, use_tracer
from repro.util.metrics import MetricsRegistry

#: One tight window pair so tests can fire alerts in a handful of
#: observations: threshold 2x the budget over 10 s / 30 s windows.
FAST = (BurnWindow(short_s=10.0, long_s=30.0, threshold=2.0),)


def spec(target=0.9, windows=FAST, name="t"):
    return SloSpec(name=name, target=target, windows=windows)


class TestValidation:
    def test_window_ordering_enforced(self):
        with pytest.raises(ValueError):
            BurnWindow(short_s=30.0, long_s=10.0, threshold=1.0)
        with pytest.raises(ValueError):
            BurnWindow(short_s=0.0, long_s=10.0, threshold=1.0)
        with pytest.raises(ValueError):
            BurnWindow(short_s=1.0, long_s=2.0, threshold=0.0)

    def test_spec_target_must_be_a_fraction(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                SloSpec(name="x", target=bad)
        with pytest.raises(ValueError):
            SloSpec(name="", target=0.9)
        with pytest.raises(ValueError):
            SloSpec(name="x", windows=())

    def test_engine_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            SloEngine([spec(name="a"), spec(name="a")])

    def test_engine_rejects_unknown_slo(self):
        engine = SloEngine([spec(name="a")])
        with pytest.raises(KeyError):
            engine.record("b", 0.0, good=True)

    def test_time_must_not_regress(self):
        tracker = SloTracker(spec())
        tracker.record(5.0, good=True)
        with pytest.raises(ValueError):
            tracker.record(4.0, good=True)


class TestWindowMath:
    def test_error_rate_is_windowed(self):
        tracker = SloTracker(spec())
        for t in range(10):
            tracker.record(float(t), good=t < 5)  # 5 good then 5 bad
        # Short window (10 s) holds all ten; last 4 s holds only errors.
        assert tracker.error_rate(10.0, 9.0) == pytest.approx(0.5)
        assert tracker.error_rate(4.0, 9.0) == pytest.approx(1.0)

    def test_empty_window_is_clean(self):
        tracker = SloTracker(spec())
        assert tracker.error_rate(10.0, 100.0) == 0.0
        tracker.record(0.0, good=False)
        # The observation has aged out of the window entirely.
        assert tracker.error_rate(10.0, 100.0) == 0.0

    def test_burn_rate_is_error_rate_over_budget(self):
        tracker = SloTracker(spec(target=0.9))  # budget 0.1
        tracker.record(0.0, good=False)
        assert tracker.burn_rate(10.0, 0.0) == pytest.approx(10.0)

    def test_events_pruned_past_longest_window(self):
        tracker = SloTracker(spec())
        for t in range(100):
            tracker.record(float(t), good=True)
        # Retention horizon is the longest window (30 s).
        assert len(tracker._events) <= 31

    def test_compliance_is_lifetime(self):
        tracker = SloTracker(spec())
        assert tracker.compliance == 1.0
        tracker.record(0.0, good=True)
        tracker.record(1.0, good=False)
        assert tracker.compliance == pytest.approx(0.5)


class TestAlerting:
    def test_alert_needs_both_windows(self):
        # One bad observation among many old good ones: the short window
        # burns hot but the long window does not confirm.
        windows = (BurnWindow(short_s=2.0, long_s=30.0, threshold=2.0),)
        tracker = SloTracker(spec(target=0.5, windows=windows))
        for t in range(20):
            tracker.record(float(t), good=True)
        fired = tracker.record(20.0, good=False)
        assert fired == []

    def test_sustained_breach_fires_once(self):
        tracker = SloTracker(spec(target=0.9))
        alerts = []
        for t in range(20):
            alerts += tracker.record(float(t), good=False)
        assert len(alerts) == 1
        assert alerts[0].slo == "t"
        assert alerts[0].burn_short >= 2.0

    def test_latch_rearms_after_recovery(self):
        tracker = SloTracker(spec(target=0.9))
        for t in range(10):
            tracker.record(float(t), good=False)
        assert len(tracker.alerts) == 1
        # A full horizon of good observations clears both windows...
        for t in range(10, 50):
            tracker.record(float(t), good=True)
        assert not any(tracker._latched.values())
        # ...so the next sustained breach is a new alert.
        for t in range(50, 60):
            tracker.record(float(t), good=False)
        assert len(tracker.alerts) == 2

    def test_verdict_shape(self):
        tracker = SloTracker(spec())
        tracker.record(0.0, good=False)
        verdict = tracker.verdict()
        assert verdict["slo"] == "t"
        assert verdict["observations"] == 1
        assert verdict["errors"] == 1
        assert isinstance(verdict["alerts"], list)
        assert verdict["ok"] is False  # compliance 0 < target

    def test_default_windows_are_the_sre_pairs(self):
        assert DEFAULT_WINDOWS[0].short_s < DEFAULT_WINDOWS[0].long_s
        assert DEFAULT_WINDOWS[0].threshold > DEFAULT_WINDOWS[1].threshold


class TestEngineTelemetry:
    def test_counters_and_alert_events(self):
        metrics = MetricsRegistry()
        engine = SloEngine([spec(target=0.9)], metrics=metrics)
        tracer = Tracer()
        with use_tracer(tracer):
            for t in range(10):
                engine.record("t", float(t), good=False)
        export = metrics.to_dict()
        assert export["slo.t.observations"]["value"] == 10
        assert export["slo.t.errors"]["value"] == 10
        assert export["slo.t.alerts"]["value"] == 1
        alert_events = [
            r for r in tracer.records if getattr(r, "name", "") == "slo.alert"
        ]
        assert len(alert_events) == 1
        assert alert_events[0].category == "slo"
        assert alert_events[0].args["slo"] == "t"

    def test_alerts_property_sorted_and_counted(self):
        engine = SloEngine([spec(name="a", target=0.9),
                            spec(name="b", target=0.9)])
        for t in range(10):
            engine.record("b", float(t), good=False)
            engine.record("a", float(t), good=False)
        assert engine.n_alerts == 2
        assert [a.slo for a in engine.alerts] == ["a", "b"]
        assert engine.ok is False
        assert sorted(engine.verdicts()) == ["a", "b"]


@settings(max_examples=60, deadline=None)
@given(
    goods=st.lists(st.booleans(), min_size=1, max_size=60),
    flip=st.data(),
)
def test_burn_rates_monotone_in_errors(goods, flip):
    """Flipping any good observation to bad never lowers any burn rate.

    The monotonicity the module docstring promises: with timestamps fixed,
    a pointwise-worse run burns every window at least as fast at every
    instant, so the set of firing instants only grows.  The latched alert
    *count* is deliberately not monotone (two breaches can merge into one
    sustained breach), so the count assertion is implication-shaped: if
    the base run alerted at all, the worse run must have alerted too.
    """
    index = flip.draw(st.integers(0, len(goods) - 1))
    worse = list(goods)
    worse[index] = False

    def run(sequence):
        tracker = SloTracker(spec(target=0.9))
        burns = []
        for t, good in enumerate(sequence):
            tracker.record(float(t), good=good)
            burns.append(
                tuple(tracker.burn_rate(w, float(t)) for w in (10.0, 30.0))
            )
        return burns, len(tracker.alerts), tracker.compliance

    base_burns, base_alerts, base_compliance = run(goods)
    worse_burns, worse_alerts, worse_compliance = run(worse)
    for base_pair, worse_pair in zip(base_burns, worse_burns):
        for base, worsened in zip(base_pair, worse_pair):
            assert worsened >= base - 1e-12
    if base_alerts:
        assert worse_alerts >= 1
    assert worse_compliance <= base_compliance + 1e-12
