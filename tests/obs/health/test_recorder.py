"""FlightRecorder unit tests: ring eviction, absorb, worker determinism."""

import pytest

from repro.experiments.parallel import parallel_map, spawn_seeds
from repro.obs.exporters import to_jsonl
from repro.obs.health.recorder import FlightRecorder
from repro.obs.tracer import Span, get_tracer, use_tracer


def one_cycle(tracer, index, t0):
    """A tiny two-level cycle span tree ending at ``t0 + 1``."""
    outer = tracer.begin("cycle", t=t0, index=index)
    inner = tracer.begin("phase", t=t0 + 0.1)
    tracer.event("tick", t=t0 + 0.2, index=index)
    tracer.end(inner, t=t0 + 0.5)
    tracer.end(outer, t=t0 + 1.0)


class TestRing:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity_cycles=0)

    def test_retains_only_the_newest_cycles(self):
        recorder = FlightRecorder(capacity_cycles=2)
        for i in range(5):
            one_cycle(recorder, i, float(i))
        assert recorder.n_cycles_retained == 2
        indices = [
            r.args["index"]
            for r in recorder.records
            if isinstance(r, Span) and r.name == "cycle"
        ]
        assert indices == [3, 4]
        # 3 evicted cycles x (2 spans + 1 event) each.
        assert recorder.evicted_spans == 6
        assert recorder.evicted_events == 3

    def test_on_evict_sees_every_evicted_record(self):
        evicted = []
        recorder = FlightRecorder(capacity_cycles=1, on_evict=evicted.extend)
        for i in range(4):
            one_cycle(recorder, i, float(i))
        # Evicted + retained reconstructs the full run, in order.
        full = evicted + list(recorder.records)
        indices = [
            r.args["index"]
            for r in full
            if isinstance(r, Span) and r.name == "cycle"
        ]
        assert indices == [0, 1, 2, 3]

    def test_events_between_cycles_ride_with_the_next_segment(self):
        recorder = FlightRecorder(capacity_cycles=1)
        one_cycle(recorder, 0, 0.0)
        recorder.event("between", t=1.5)
        one_cycle(recorder, 1, 2.0)
        names = [r.name for r in recorder.records]
        # Cycle 0 was evicted together with nothing after it; the orphan
        # event belongs to cycle 1's segment and survives with it.
        assert "between" in names
        assert [r.args.get("index") for r in recorder.records
                if isinstance(r, Span) and r.name == "cycle"] == [1]

    def test_metric_snapshot_ring_shares_the_capacity(self):
        recorder = FlightRecorder(capacity_cycles=3)
        for i in range(10):
            recorder.snapshot_metrics(i, float(i), {"n": i})
        assert len(recorder.metric_snapshots) == 3
        assert [s[0] for s in recorder.metric_snapshots] == [7, 8, 9]

    def test_open_spans_not_counted_until_closed(self):
        recorder = FlightRecorder(capacity_cycles=2)
        span = recorder.begin("cycle", t=0.0)
        assert recorder.n_cycles_retained == 0
        recorder.end(span, t=1.0)
        assert recorder.n_cycles_retained == 1


def _traced_task(seed):
    """A worker task tracing one cycle on the ambient tracer."""
    tracer = get_tracer()
    one_cycle(tracer, seed, 0.0)
    return seed


class TestAbsorbDeterminism:
    """Merged flight recordings are byte-stable across worker counts.

    The same contract TestTraceMergeDeterminism pins for the plain Tracer,
    plus the ring: after absorbing parallel batches the recorder applies
    the same eviction rule the sequential run applied, so the retained
    window is identical.
    """

    WORKER_COUNTS = (1, 2, 4)

    def _run(self, workers, capacity):
        recorder = FlightRecorder(capacity_cycles=capacity)
        tasks = [(s,) for s in spawn_seeds(31, 6)]
        with use_tracer(recorder):
            results = parallel_map(_traced_task, tasks, workers=workers)
        return results, to_jsonl(recorder), recorder.n_cycles_retained

    @pytest.mark.parametrize("capacity", [2, 4, 100])
    def test_jsonl_byte_equal_across_worker_counts(self, capacity):
        reference = self._run(1, capacity)
        for workers in self.WORKER_COUNTS[1:]:
            assert self._run(workers, capacity) == reference, (
                f"flight recording diverged at workers={workers}, "
                f"capacity={capacity}"
            )

    def test_absorb_rebuilds_segments(self):
        recorder = FlightRecorder(capacity_cycles=2)
        one_cycle(recorder, 0, 0.0)

        from repro.obs.tracer import Tracer

        worker = Tracer()
        one_cycle(worker, 1, 0.0)
        one_cycle(worker, 2, 2.0)
        recorder.absorb(worker.records)
        assert recorder.n_cycles_retained == 2
        indices = [
            r.args["index"]
            for r in recorder.records
            if isinstance(r, Span) and r.name == "cycle"
        ]
        assert indices == [1, 2]
