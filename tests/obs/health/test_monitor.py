"""HealthMonitor / SiteHealthMonitor unit tests on synthetic cycles."""

from types import SimpleNamespace

import pytest

from repro.obs.health.monitor import (
    HealthMonitor,
    HealthPolicy,
    SiteHealthMonitor,
    default_slos,
    site_slos,
)
from repro.obs.health.recorder import FlightRecorder
from repro.util.metrics import MetricsRegistry


def obs(value):
    return SimpleNamespace(epc=SimpleNamespace(value=value))


def cycle(index, t0, reads=(), duration=1.0, degraded=False, fallback=False):
    """A minimal CycleResult stand-in carrying what the monitor touches."""
    return SimpleNamespace(
        index=index,
        phase1_observations=[obs(v) for v in reads],
        phase2_observations=[],
        assessments={},
        target_epc_values=set(),
        plan=None,
        fallback=fallback,
        degraded=degraded,
        assessment_wall_s=0.0,
        scheduling_wall_s=0.0,
        phase1_start_s=t0,
        phase1_end_s=t0 + duration / 2,
        phase2_end_s=t0 + duration,
        cycle_duration_s=duration,
    )


def monitor(**kwargs):
    kwargs.setdefault("policy", HealthPolicy(irr_floor_hz=2.0))
    return HealthMonitor(**kwargs)


class TestPolicyValidation:
    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            HealthPolicy(irr_floor_hz=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(staleness_ceiling_cycles=0)
        with pytest.raises(ValueError):
            HealthPolicy(recovery_ceiling_s=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(redundancy_budget=0.5)
        with pytest.raises(ValueError):
            HealthPolicy(window=0)
        with pytest.raises(ValueError):
            HealthPolicy(coverage_floor=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(coverage_floor=1.5)
        with pytest.raises(ValueError):
            HealthPolicy(failover_ceiling_s=0.0)

    def test_default_slo_sets(self):
        assert {s.name for s in default_slos()} == {
            "irr_floor", "staleness_p99", "recovery_time",
        }
        assert {s.name for s in site_slos()} == {
            "fusion_redundancy", "failover_time", "coverage_floor",
        }


class TestIrrFloor:
    def test_slow_cycle_records_an_error(self):
        health = monitor()
        health.observe_cycle(cycle(0, 0.0, reads=(1, 2, 3, 4)))  # 4 Hz: good
        health.observe_cycle(cycle(1, 1.0, reads=(1,)))  # 1 Hz: error
        tracker = health.engine.trackers["irr_floor"]
        assert tracker.n_observations == 2
        assert tracker.n_errors == 1


class TestStaleness:
    WATCH = (7,)

    def test_unread_watch_tag_goes_stale_then_reads_reset(self):
        health = monitor(watch_epcs=self.WATCH)
        tracker = health.engine.trackers["staleness_p99"]
        for i in range(4):  # ceiling is 3 healthy unread cycles
            health.observe_cycle(cycle(i, float(i), reads=(1, 2, 3, 4)))
        assert tracker.n_errors == 1
        health.observe_cycle(cycle(4, 4.0, reads=(7, 1, 2, 3)))
        assert health._unread_healthy[7] == 0
        assert tracker.n_errors == 1  # reading it stopped the bleeding

    def test_unhealthy_cycles_hold_the_clock(self):
        health = monitor(watch_epcs=self.WATCH)
        for i in range(10):
            health.observe_cycle(
                cycle(i, float(i), reads=(1, 2, 3, 4)), healthy=False
            )
        # The tag was never read, but no cycle was healthy: no staleness.
        assert health.engine.trackers["staleness_p99"].n_errors == 0

    def test_no_watch_epcs_means_no_staleness_slo_traffic(self):
        health = monitor()
        health.observe_cycle(cycle(0, 0.0, reads=(1, 2, 3)))
        assert health.engine.trackers["staleness_p99"].n_observations == 0


class TestRecovery:
    def test_episode_scored_once_when_it_closes(self):
        health = monitor(policy=HealthPolicy(
            irr_floor_hz=2.0, recovery_ceiling_s=3.0,
        ))
        tracker = health.engine.trackers["recovery_time"]
        health.observe_cycle(cycle(0, 0.0, reads=(1, 2, 3)))
        for i in range(1, 3):  # 2-cycle episode, recovers within ceiling
            health.observe_cycle(cycle(i, float(i), reads=(1, 2, 3)),
                                 healthy=False)
        health.observe_cycle(cycle(3, 3.0, reads=(1, 2, 3)))
        assert tracker.n_observations == 1
        assert tracker.n_errors == 0

    def test_slow_recovery_is_an_error(self):
        health = monitor(policy=HealthPolicy(
            irr_floor_hz=2.0, recovery_ceiling_s=3.0,
        ))
        tracker = health.engine.trackers["recovery_time"]
        for i in range(6):  # 6-cycle episode: 6 s >> 3 s ceiling
            health.observe_cycle(cycle(i, float(i), reads=(1, 2, 3)),
                                 healthy=False)
        health.observe_cycle(cycle(6, 6.0, reads=(1, 2, 3)))
        assert tracker.n_observations == 1
        assert tracker.n_errors == 1


class TestIncidents:
    def test_escalation_bundles_once_per_episode(self, tmp_path):
        recorder = FlightRecorder(capacity_cycles=4)
        health = monitor(recorder=recorder, incident_dir=str(tmp_path))
        health.observe_cycle(cycle(0, 0.0, reads=(1, 2, 3)), healthy=False)
        first = health.incident("retry", "escalation", 1.0, 0)
        second = health.incident("restart", "escalation", 2.0, 1)
        assert first is not None and second is None
        # A healthy cycle closes the episode; the next escalation dumps.
        health.observe_cycle(cycle(1, 1.0, reads=(1, 2, 3)))
        third = health.incident("retry", "escalation", 3.0, 2)
        assert third is not None
        # Incident records stay 1:1 with bundles; deduped rungs vanish.
        assert len(health.incidents) == 2

    def test_kills_and_invariants_always_dump(self, tmp_path):
        recorder = FlightRecorder(capacity_cycles=4)
        health = monitor(recorder=recorder, incident_dir=str(tmp_path))
        assert health.incident("soak kill", "kill", 1.0, 0) is not None
        assert health.incident("phantom_epc", "invariant", 2.0, 1) is not None

    def test_no_recorder_counts_but_does_not_dump(self, tmp_path):
        metrics = MetricsRegistry()
        health = monitor(metrics=metrics)
        assert health.incident("x", "kill", 1.0, 0) is None
        assert len(health.incidents) == 1
        assert metrics.to_dict()["health.incidents"]["value"] == 1


class TestReport:
    def test_report_shape_and_status(self):
        health = monitor()
        report = health.report()
        assert report["status"] == "ok"
        assert report["n_cycles"] == 0
        health.observe_cycle(cycle(0, 0.0, reads=(1, 2), degraded=True))
        report = health.report()
        assert report["status"] == "degraded"
        assert set(report) == {
            "status", "n_cycles", "slo", "n_alerts", "staleness_p99_cycles",
            "window", "client", "counters", "flight_recorder", "incidents",
        }

    def test_alerting_wins_over_degraded(self):
        health = monitor()
        for i in range(30):
            health.observe_cycle(cycle(i, float(i), reads=(1,)))  # 1 Hz: bad
        assert health.engine.n_alerts >= 1
        assert health.report()["status"] == "alerting"


def site_run(raw_per_reader=40, distinct=60, duration=2.0, n_readers=3):
    summaries = [
        {
            "reader_id": i,
            "reports": [None] * raw_per_reader,
            "n_rounds": 5,
            "n_slots": 100,
            "duration_s": duration,
        }
        for i in range(n_readers)
    ]
    return SimpleNamespace(
        config=SimpleNamespace(duration_s=duration),
        reader_summaries=summaries,
        fusion=SimpleNamespace(n_reports=distinct),
        missed_rate=0.0,
    )


class TestSiteHealth:
    def test_redundancy_within_budget_is_good(self):
        site = SiteHealthMonitor()
        signals = site.observe_run(site_run())
        assert signals["raw_reports"] == 120
        assert signals["redundancy"] == pytest.approx(2.0)
        assert site.engine.trackers["fusion_redundancy"].n_errors == 0

    def test_redundancy_over_budget_is_an_error(self):
        site = SiteHealthMonitor(policy=HealthPolicy(redundancy_budget=1.5))
        site.observe_run(site_run())  # redundancy 2.0 > 1.5
        assert site.engine.trackers["fusion_redundancy"].n_errors == 1

    def test_empty_fusion_is_an_error(self):
        site = SiteHealthMonitor()
        site.observe_run(site_run(distinct=0))
        assert site.engine.trackers["fusion_redundancy"].n_errors == 1

    def test_report_embeds_interval_signals(self):
        site = SiteHealthMonitor()
        run = site_run()
        site.observe_run(run)
        report = site.report(run=run)
        assert report["status"] == "ok"
        assert report["n_intervals"] == 1
        assert report["fusion"]["fused_distinct"] == 60
        assert len(report["fusion"]["readers"]) == 3

    def test_real_site_run_health_report(self):
        from repro.site import ChannelCoordinator, SiteConfig, ring_site
        from repro.site.site import simulate_site

        config = SiteConfig(
            topology=ring_site(2, 30),
            seed=3,
            duration_s=0.5,
            coordinator=ChannelCoordinator(n_channels=16),
        )
        run = simulate_site(config)
        report = run.health_report()
        assert report["status"] == "ok"
        assert report["fusion"]["fused_distinct"] == run.fusion.n_reports
