"""Health layer acceptance on the soak harness.

The two load-bearing guarantees from the issue: a fault-free seeded run
must produce **zero** SLO alerts (no false positives — coverage excusal
and unhealthy-cycle clock-holding are doing their jobs), and a chaos run
with a bundle directory must cut at least one valid bundle per kill and
per unhealthy episode.
"""

import pytest

from repro.experiments import soak
from repro.obs.health import list_bundles, validate_bundle


@pytest.fixture(scope="module")
def quiet_report():
    config = soak.SoakConfig(
        n_cycles=80, seed=4, crash_every=0, kill_every=0, corrupt_every=0,
        jam_every=0, blackout_every=0, churn_tags=0, report_loss=0.0,
    )
    return soak.run(config)


@pytest.fixture(scope="module")
def chaos(tmp_path_factory):
    bundle_dir = tmp_path_factory.mktemp("bundles")
    config = soak.SoakConfig(
        n_cycles=120, seed=9, crash_every=30, kill_every=50,
        corrupt_every=0, bundle_dir=str(bundle_dir),
    )
    return soak.run(config), bundle_dir


class TestFaultFree:
    def test_zero_slo_alerts(self, quiet_report):
        assert quiet_report.ok
        assert quiet_report.n_slo_alerts == 0
        assert quiet_report.slo_ok
        assert quiet_report.health_status == "ok"
        assert quiet_report.n_incidents == 0

    def test_slos_actually_observed(self, quiet_report):
        verdicts = quiet_report.slo
        assert verdicts["irr_floor"]["observations"] == 80
        assert verdicts["staleness_p99"]["observations"] == 80
        assert verdicts["irr_floor"]["errors"] == 0


class TestChaos:
    def test_survives_and_cuts_bundles(self, chaos):
        report, bundle_dir = chaos
        assert report.ok  # invariants still hold under chaos
        assert report.n_incidents >= 2  # kills at least
        bundles = list_bundles(bundle_dir)
        assert len(bundles) == report.n_incidents
        # Both kill bundles and escalation-episode bundles appear.
        kinds = {p.name.split("-")[2] for p in bundles}
        assert "kill" in kinds

    def test_every_bundle_validates(self, chaos):
        _, bundle_dir = chaos
        for path in list_bundles(bundle_dir):
            assert validate_bundle(path) == [], path.name

    def test_report_carries_the_health_block(self, chaos):
        report, _ = chaos
        document = report.to_dict()
        for key in ("slo", "n_slo_alerts", "n_incidents",
                    "health_status", "slo_ok"):
            assert key in document
        text = soak.format_report(report)
        assert "SLO alerts" in text
        assert "health status" in text


class TestDeterminism:
    def test_same_seed_same_bundles(self, tmp_path):
        def run_once(name):
            bundle_dir = tmp_path / name
            config = soak.SoakConfig(
                n_cycles=60, seed=9, crash_every=25, kill_every=40,
                corrupt_every=0, checkpoint_dir=tmp_path / f"ckpt-{name}",
                bundle_dir=str(bundle_dir),
            )
            soak.run(config)
            return {
                f"{p.name}/{f.name}": f.read_bytes()
                for p in list_bundles(bundle_dir)
                for f in sorted(p.iterdir())
            }

        first = run_once("a")
        assert first  # chaos at this cadence must cut something
        assert run_once("b") == first
