"""Incident bundle tests: layout, validation, cross-worker determinism."""

import json

import pytest

from repro.experiments.parallel import parallel_map, spawn_seeds
from repro.obs.health.bundle import (
    BUNDLE_VERSION,
    REQUIRED_FILES,
    bundle_name,
    list_bundles,
    validate_bundle,
    write_incident_bundle,
)
from repro.obs.health.recorder import FlightRecorder
from repro.obs.tracer import get_tracer, use_tracer
from repro.util.metrics import MetricsRegistry


def make_recorder():
    recorder = FlightRecorder(capacity_cycles=4)
    for i in range(3):
        span = recorder.begin("cycle", t=float(i), index=i)
        recorder.event("tick", t=i + 0.5)
        recorder.end(span, t=i + 1.0)
        recorder.snapshot_metrics(i, i + 1.0, {"reads": i * 10})
    return recorder


def cut(tmp_path, **overrides):
    metrics = MetricsRegistry()
    metrics.counter("client.retries").inc(2)
    kwargs = dict(
        seq=1,
        reason="escalation-restart",
        kind="escalation",
        t_s=3.0,
        cycle_index=2,
        recorder=make_recorder(),
        slo_verdicts={"irr_floor": {"ok": True}},
        metrics=metrics,
        config_hash="abc123",
        checkpoint_generation=7,
    )
    kwargs.update(overrides)
    return write_incident_bundle(tmp_path, **kwargs)


class TestNaming:
    def test_bundle_name_is_deterministic_and_safe(self):
        assert bundle_name(3, "Escalation: RESTART!") == (
            "incident-0003-escalation-restart"
        )
        assert bundle_name(1, "***") == "incident-0001-incident"
        assert len(bundle_name(1, "x" * 500)) <= len("incident-0001-") + 48


class TestLayout:
    def test_all_required_files_present(self, tmp_path):
        root = cut(tmp_path)
        for name in REQUIRED_FILES + ("manifest.json",):
            assert (root / name).is_file(), name

    def test_manifest_contents(self, tmp_path):
        root = cut(tmp_path)
        manifest = json.loads((root / "manifest.json").read_text())
        assert manifest["bundle_version"] == BUNDLE_VERSION
        assert manifest["kind"] == "escalation"
        assert manifest["config_hash"] == "abc123"
        assert manifest["checkpoint_generation"] == 7
        assert manifest["n_cycles_retained"] == 3
        assert set(manifest["files"]) == set(REQUIRED_FILES)

    def test_trace_and_ring_are_jsonl(self, tmp_path):
        root = cut(tmp_path)
        trace_lines = (root / "trace.jsonl").read_text().splitlines()
        assert len(trace_lines) == 6  # 3 spans + 3 events
        for line in trace_lines:
            json.loads(line)
        ring_lines = (root / "metrics_ring.jsonl").read_text().splitlines()
        assert [json.loads(l)["cycle"] for l in ring_lines] == [0, 1, 2]

    def test_prometheus_export_rides_along(self, tmp_path):
        root = cut(tmp_path)
        assert "client_retries_total 2" in (root / "metrics.prom").read_text()


class TestValidation:
    def test_fresh_bundle_validates_clean(self, tmp_path):
        assert validate_bundle(cut(tmp_path)) == []

    def test_missing_manifest_detected(self, tmp_path):
        root = cut(tmp_path)
        (root / "manifest.json").unlink()
        assert any("manifest" in p for p in validate_bundle(root))

    def test_tampered_file_detected(self, tmp_path):
        root = cut(tmp_path)
        (root / "trace.jsonl").write_text('{"tampered": true}\n')
        problems = validate_bundle(root)
        assert any("checksum mismatch" in p for p in problems)

    def test_missing_required_file_detected(self, tmp_path):
        root = cut(tmp_path)
        (root / "slo.json").unlink()
        assert any("missing slo.json" in p for p in validate_bundle(root))

    def test_unparseable_jsonl_detected(self, tmp_path):
        root = cut(tmp_path)
        (root / "metrics_ring.jsonl").write_text("not json\n")
        problems = validate_bundle(root)
        assert any("not JSON" in p for p in problems)

    def test_list_bundles_in_sequence_order(self, tmp_path):
        cut(tmp_path, seq=2, reason="b")
        cut(tmp_path, seq=1, reason="a")
        names = [p.name for p in list_bundles(tmp_path)]
        assert names == ["incident-0001-a", "incident-0002-b"]
        assert list_bundles(tmp_path / "nope") == []


def _traced_task(seed):
    tracer = get_tracer()
    span = tracer.begin("cycle", t=0.0, seed=seed)
    tracer.event("tick", t=0.5)
    tracer.end(span, t=1.0)
    return seed


class TestWorkerDeterminism:
    """Same seed + config => byte-identical bundles at any worker count."""

    WORKER_COUNTS = (1, 2, 4)

    def _bundle_bytes(self, tmp_path, workers):
        recorder = FlightRecorder(capacity_cycles=4)
        tasks = [(s,) for s in spawn_seeds(17, 6)]
        with use_tracer(recorder):
            parallel_map(_traced_task, tasks, workers=workers)
        root = write_incident_bundle(
            tmp_path / f"w{workers}",
            seq=1,
            reason="kill",
            kind="kill",
            t_s=6.0,
            cycle_index=5,
            recorder=recorder,
            slo_verdicts={},
        )
        assert validate_bundle(root) == []
        return {
            name: (root / name).read_bytes()
            for name in REQUIRED_FILES + ("manifest.json",)
        }

    def test_bundles_byte_identical_across_worker_counts(self, tmp_path):
        reference = self._bundle_bytes(tmp_path, 1)
        for workers in self.WORKER_COUNTS[1:]:
            current = self._bundle_bytes(tmp_path, workers)
            for name in reference:
                assert current[name] == reference[name], (
                    f"{name} diverged at workers={workers}"
                )
