"""Structured logger: print-compatible plain format, JSON lines, levels."""

import io
import json

import pytest

from repro.obs.logging import LEVELS, configure, get_logger, reset


@pytest.fixture(autouse=True)
def _clean_config():
    reset()
    yield
    reset()


def test_plain_info_is_byte_identical_to_print(capsys):
    log = get_logger("repro.test")
    messages = ["warming up (15 s)...", "", "a | table | row", "wrote x.json"]
    for msg in messages:
        log.info(msg)
    logged = capsys.readouterr().out
    for msg in messages:
        print(msg)
    printed = capsys.readouterr().out
    assert logged == printed


def test_plain_fields_append_sorted(capsys):
    get_logger("t").info("cycle done", targets=2, cycle=3)
    assert capsys.readouterr().out == "cycle done [cycle=3 targets=2]\n"
    get_logger("t").info("", only="fields")
    assert capsys.readouterr().out == "[only=fields]\n"


def test_error_goes_to_stderr(capsys):
    get_logger("t").error("boom")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == "boom\n"


def test_level_filtering(capsys):
    log = get_logger("t")
    log.debug("hidden")
    assert capsys.readouterr().out == ""
    configure(level="debug")
    log.debug("shown")
    assert capsys.readouterr().out == "shown\n"
    configure(level="error")
    log.info("hidden again")
    assert capsys.readouterr().out == ""


def test_json_format_is_sorted_and_timestamp_free(capsys):
    configure(format="json")
    get_logger("repro.x").info("hello", n=1)
    line = capsys.readouterr().out.strip()
    record = json.loads(line)
    assert record == {
        "fields": {"n": 1},
        "level": "info",
        "logger": "repro.x",
        "msg": "hello",
    }
    assert line == json.dumps(record, sort_keys=True)


def test_json_timestamps_opt_in(capsys):
    configure(format="json", timestamps=True)
    get_logger("t").info("x")
    record = json.loads(capsys.readouterr().out)
    assert isinstance(record["ts"], float)


def test_explicit_streams():
    out, err = io.StringIO(), io.StringIO()
    configure(stream=out, err_stream=err)
    log = get_logger("t")
    log.info("to out")
    log.error("to err")
    assert out.getvalue() == "to out\n"
    assert err.getvalue() == "to err\n"


def test_env_level_applies_on_reset(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
    reset()
    log = get_logger("repro.test")
    log.info("hidden")
    log.error("shown")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == "shown\n"


def test_env_level_invalid_falls_back_to_info(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_LOG_LEVEL", "chatty")
    reset()
    log = get_logger("repro.test")
    log.debug("hidden")
    log.info("shown")
    assert capsys.readouterr().out == "shown\n"


def test_explicit_configure_overrides_env(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
    reset()
    configure(level="debug")
    get_logger("repro.test").debug("shown")
    assert capsys.readouterr().out == "shown\n"


def test_configure_rejects_unknown_values():
    with pytest.raises(ValueError):
        configure(format="xml")
    with pytest.raises(ValueError):
        configure(level="loud")


def test_logger_cache_and_levels_table():
    assert get_logger("same") is get_logger("same")
    assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]
