"""Exporters: JSONL/Chrome determinism, schema validity, Prometheus text."""

import json

from repro.obs import (
    Tracer,
    metrics_to_prometheus,
    to_chrome_trace,
    to_jsonl,
    use_tracer,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.experiments import fig02_irr
from repro.util.metrics import MetricsRegistry


def _small_trace():
    tracer = Tracer(wall_clock=lambda: 0.125)
    cycle = tracer.begin("cycle", t=0.0, category="core", index=0)
    phase1 = tracer.begin("phase1", t=0.0, category="core")
    tracer.event("select", t=0.1, category="gen2", antenna=2)
    tracer.end(phase1, t=1.0)
    tracer.end(cycle, t=2.5)
    return tracer


def test_jsonl_rows_have_stable_shape():
    rows = [json.loads(line) for line in to_jsonl(_small_trace()).splitlines()]
    assert [r["type"] for r in rows] == ["event", "span", "span"]
    span = rows[1]
    assert span["name"] == "phase1"
    assert span["t0_s"] == 0.0 and span["t1_s"] == 1.0 and span["dur_s"] == 1.0
    assert "wall_dur_s" not in span
    wall_rows = [
        json.loads(line)
        for line in to_jsonl(_small_trace(), include_wall=True).splitlines()
    ]
    assert "wall_dur_s" in wall_rows[1]


def test_chrome_trace_is_valid_and_microsecond_scaled():
    document = to_chrome_trace(_small_trace())
    assert validate_chrome_trace(document) == []
    spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
    assert len(spans) == 2 and len(instants) == 1 and len(metadata) == 1
    cycle = next(e for e in spans if e["name"] == "cycle")
    assert cycle["ts"] == 0.0 and cycle["dur"] == 2.5e6
    phase = next(e for e in spans if e["name"] == "phase1")
    assert phase["args"]["parent"] == cycle["args"]["id"]


def test_slo_gauge_events_render_as_counter_tracks():
    tracer = Tracer()
    span = tracer.begin("cycle", t=0.0, category="core")
    tracer.event("slo.irr_hz", t=0.5, category="slo", value=42.5)
    tracer.event("slo.alert", t=0.6, category="slo", slo="irr_floor")
    tracer.end(span, t=1.0)
    document = to_chrome_trace(tracer)
    counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
    assert len(counters) == 1
    assert counters[0]["name"] == "slo.irr_hz"
    assert counters[0]["args"] == {"value": 42.5}
    assert counters[0]["ts"] == 0.5e6
    # The alert has no numeric value: it stays an instant marker.
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["slo.alert"]
    assert validate_chrome_trace(document) == []


def test_validate_chrome_trace_checks_counter_events():
    base = {"name": "c", "cat": "slo", "pid": 1, "tid": 1, "ts": 1.0}
    good = {"traceEvents": [dict(base, ph="C", args={"value": 1.5})]}
    assert validate_chrome_trace(good) == []
    empty = {"traceEvents": [dict(base, ph="C", args={})]}
    assert any("non-empty args" in p for p in validate_chrome_trace(empty))
    stringy = {"traceEvents": [dict(base, ph="C", args={"value": "hot"})]}
    assert any("numeric" in p for p in validate_chrome_trace(stringy))
    no_ts = {"traceEvents": [{"name": "c", "cat": "slo", "pid": 1,
                              "tid": 1, "ph": "C", "args": {"v": 1}}]}
    assert any("missing ts" in p for p in validate_chrome_trace(no_ts))


def test_validate_chrome_trace_flags_problems():
    assert validate_chrome_trace([]) == ["top level must be an object"]
    assert validate_chrome_trace({}) == ["traceEvents must be a list"]
    bad = {
        "traceEvents": [
            {"ph": "Q", "name": "x", "pid": 1, "tid": 1},
            {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0.0, "dur": -1},
        ]
    }
    problems = validate_chrome_trace(bad)
    assert any("bad ph" in p for p in problems)
    assert any("negative dur" in p for p in problems)


def test_writers_round_trip(tmp_path):
    tracer = _small_trace()
    jsonl_path = tmp_path / "trace.jsonl"
    chrome_path = tmp_path / "trace.json"
    write_jsonl(str(jsonl_path), tracer)
    write_chrome_trace(str(chrome_path), tracer)
    assert jsonl_path.read_text() == to_jsonl(tracer)
    document = json.loads(chrome_path.read_text())
    assert validate_chrome_trace(document) == []


def test_prometheus_exposition():
    registry = MetricsRegistry()
    registry.counter("client.retries").inc(3)
    registry.gauge("breaker.open").set(1)
    registry.histogram("backoff_s").observe(0.5)
    registry.histogram("never_observed")  # empty histograms must export too
    text = metrics_to_prometheus(registry)
    assert "# TYPE client_retries_total counter" in text
    assert "client_retries_total 3" in text
    assert "breaker_open 1" in text
    assert 'backoff_s{quantile="0.5"} 0.5' in text
    assert "never_observed_count 0" in text
    assert text.endswith("\n")
    assert metrics_to_prometheus(MetricsRegistry()) == ""


def _fig02_trace(seed_irrelevant=None):
    tracer = Tracer()
    with use_tracer(tracer):
        fig02_irr.run(tag_counts=(1, 5), initial_qs=(4,), repeats=2)
    return tracer


def test_fig02_trace_is_deterministic_and_valid():
    first = to_jsonl(_fig02_trace())
    second = to_jsonl(_fig02_trace())
    assert first == second  # byte-identical across same-seed runs
    document = to_chrome_trace(_fig02_trace())
    assert validate_chrome_trace(document) == []


def test_phase_spans_partition_the_cycle():
    """Phase I + Phase II simulated durations sum to the cycle duration."""
    from repro.core import TagwatchConfig
    from repro.experiments.harness import build_lab

    tracer = Tracer()
    with use_tracer(tracer):
        setup = build_lab(n_tags=10, n_mobile=1, seed=7, partition=True)
        tagwatch = setup.tagwatch(TagwatchConfig(phase2_duration_s=1.0))
        tagwatch.warm_up(4.0)
        tagwatch.run(2)
    cycles = tracer.spans("cycle")
    assert len(cycles) == 2
    for cycle in cycles:
        parts = [
            s.duration_s
            for s in tracer.spans()
            if s.parent_id == cycle.span_id and s.name in ("phase1", "phase2")
        ]
        assert len(parts) == 2
        assert abs(sum(parts) - cycle.duration_s) <= 0.01 * cycle.duration_s
