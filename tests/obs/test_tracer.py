"""Tracer: nesting, ambient installation, null path, determinism."""

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    to_jsonl,
    use_tracer,
)


def fixed_wall():
    return 0.0


def test_nested_spans_record_parent_and_depth():
    tracer = Tracer(wall_clock=fixed_wall)
    outer = tracer.begin("cycle", t=0.0, category="core")
    inner = tracer.begin("phase1", t=0.0, category="core")
    tracer.end(inner, t=1.5)
    tracer.end(outer, t=2.0)
    assert inner.parent_id == outer.span_id
    assert inner.depth == 1 and outer.depth == 0
    assert inner.duration_s == 1.5
    assert outer.duration_s == 2.0
    # Completion order: children precede parents.
    assert tracer.records == [inner, outer]


def test_end_closes_dangling_children():
    tracer = Tracer(wall_clock=fixed_wall)
    outer = tracer.begin("outer", t=0.0)
    tracer.begin("leaked", t=0.5)
    tracer.end(outer, t=2.0)  # must not raise; closes "leaked" first
    assert [s.name for s in tracer.spans()] == ["leaked", "outer"]
    assert tracer.spans("leaked")[0].end_s == 2.0
    assert tracer.open_depth == 0


def test_span_context_manager_reads_clock():
    clock = iter([1.0, 3.0])
    tracer = Tracer(wall_clock=fixed_wall)
    with tracer.span("round", lambda: next(clock), category="gen2", n=4) as span:
        pass
    assert span.start_s == 1.0 and span.end_s == 3.0
    assert span.args == {"n": 4}


def test_event_anchors_to_enclosing_span_when_t_is_none():
    tracer = Tracer(wall_clock=fixed_wall)
    span = tracer.begin("schedule", t=7.25)
    event = tracer.event("setcover.iteration", iteration=0)
    tracer.end(span, t=7.25)
    assert event.t_s == 7.25
    assert event.parent_id == span.span_id
    orphan = tracer.event("loose")
    assert orphan.t_s == 0.0 and orphan.parent_id == 0


def test_end_args_merge_into_span():
    tracer = Tracer(wall_clock=fixed_wall)
    span = tracer.begin("round", t=0.0, round_index=3)
    tracer.end(span, t=1.0, n_reads=17)
    assert span.args == {"round_index": 3, "n_reads": 17}


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    assert tracer.enabled is False
    span = tracer.begin("x", t=0.0)
    tracer.end(span, t=1.0)
    tracer.event("y", t=0.5)
    with tracer.span("z", lambda: 0.0):
        pass
    assert tracer.records == []


def test_ambient_tracer_defaults_to_null_and_scopes():
    assert get_tracer() is NULL_TRACER
    tracer = Tracer()
    with use_tracer(tracer):
        assert get_tracer() is tracer
        with use_tracer(None):  # None = explicitly disable inside the scope
            assert get_tracer() is NULL_TRACER
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_set_tracer_returns_previous():
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        assert previous is NULL_TRACER
        assert get_tracer() is tracer
    finally:
        set_tracer(previous)


def _traced_workload(tracer):
    with use_tracer(tracer):
        cycle = tracer.begin("cycle", t=0.0, index=0)
        phase1 = tracer.begin("phase1", t=0.0)
        tracer.event("select", t=0.25, category="gen2", antenna=1)
        tracer.end(phase1, t=1.0, n_rounds=3)
        phase2 = tracer.begin("phase2", t=1.0)
        tracer.end(phase2, t=3.0)
        tracer.end(cycle, t=3.0)


def test_same_workload_exports_byte_identically():
    first, second = Tracer(), Tracer()
    _traced_workload(first)
    _traced_workload(second)
    assert to_jsonl(first) == to_jsonl(second)
    # Wall annotations differ between the runs but are excluded by default.
    spans = [r for r in first.records if isinstance(r, Span)]
    assert any(s.wall_duration_s >= 0.0 for s in spans)
