"""Bench harness: budget reduction, JSON export, overhead acceptance."""

import json
import time

import pytest

from repro.obs import Tracer, use_tracer, validate_chrome_trace, to_chrome_trace
from repro.obs.bench import (
    WORKLOADS,
    BenchResult,
    _analyze,
    format_reader_table,
    format_report,
    run_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def fig02_result():
    return run_bench("fig02", scale="smoke")


def test_unknown_workload_and_scale_rejected():
    with pytest.raises(ValueError, match="unknown bench workload"):
        run_bench("fig99")
    with pytest.raises(ValueError, match="unknown bench scale"):
        run_bench("fig02", scale="huge")


def test_workload_registry():
    assert set(WORKLOADS) == {"fig02", "fig18", "site", "soak"}


def test_fig02_budget_reduction(fig02_result):
    result = fig02_result
    assert result.name == "fig02" and result.scale == "smoke"
    assert result.counts["rounds"] > 0
    assert result.counts["frames"] >= result.counts["rounds"]
    assert result.breakdown["round_startup_s"] > 0
    assert result.breakdown["slot_s"] > 0
    assert result.sim_s > 0
    assert result.wall_s > 0
    # Pure inventory: no Tagwatch cycles, no schedule/assess CPU.
    assert result.counts["cycles"] == 0
    assert result.breakdown["scheduler_cpu_s"] == 0.0
    assert "tau0_ms" in result.workload


def test_write_bench_json_shape(fig02_result, tmp_path):
    path = write_bench(fig02_result, str(tmp_path))
    assert path.endswith("BENCH_fig02.json")
    data = json.loads(open(path).read())
    assert data["name"] == "fig02"
    assert set(data) == {
        "name", "scale", "wall_s", "sim_s", "slots_per_wall_s",
        "startup_cpu_share", "breakdown", "counts", "workload", "engine",
    }
    assert data["engine"]["flight_recorder"] is False
    assert data["engine"]["inventory_engine"]
    assert 0.0 <= data["startup_cpu_share"] <= 1.0
    assert data["counts"]["rounds"] == fig02_result.counts["rounds"]


def test_format_report_lists_each_workload(fig02_result):
    table = format_report([fig02_result])
    assert "fig02/smoke" in table
    assert "sim s" in table


def test_bench_reuses_ambient_tracer():
    tracer = Tracer()
    with use_tracer(tracer):
        result = run_bench("fig02", scale="smoke")
    assert result.counts["rounds"] > 0
    assert len(tracer.records) > 0  # the session trace kept the records
    assert validate_chrome_trace(to_chrome_trace(tracer)) == []


# ----------------------------------------------------------------------
# Trace-reduction accounting (no double counting)
# ----------------------------------------------------------------------
def _round(tracer, start, end, startup, n_slots=10):
    span = tracer.begin("round", t=start, category="gen2",
                        startup_s=startup, n_slots=n_slots, n_frames=1)
    tracer.end(span, t=end)


def test_analyze_breakdown_sums_to_sim_s():
    """Rounds tiling a window must account for every simulated second once.

    ``slot_s + round_startup_s`` is the exact span total — no interval is
    counted twice and none is dropped — so for a trace that is nothing but
    back-to-back rounds the budget lines sum to ``sim_s`` bit for bit.
    """
    tracer = Tracer()
    _round(tracer, 0.0, 1.0, startup=0.2)
    _round(tracer, 1.0, 2.5, startup=0.3)
    _round(tracer, 2.5, 3.0, startup=0.1)
    analysis = _analyze(tracer.records)
    breakdown = analysis["breakdown"]
    assert analysis["sim_s"] == 3.0
    assert breakdown["round_startup_s"] + breakdown["slot_s"] == analysis["sim_s"]
    assert breakdown["round_startup_s"] == 0.2 + 0.3 + 0.1


def test_analyze_clamps_startup_of_truncated_rounds():
    """A round cut short mid-start-up must not bill more than its span."""
    tracer = Tracer()
    _round(tracer, 0.0, 0.1, startup=0.5)  # truncated inside startup
    analysis = _analyze(tracer.records)
    breakdown = analysis["breakdown"]
    assert breakdown["round_startup_s"] == 0.1
    assert breakdown["slot_s"] == 0.0
    assert breakdown["round_startup_s"] + breakdown["slot_s"] == analysis["sim_s"]


def test_analyze_excludes_select_events_nested_in_rounds():
    """Select cost inside a round span is already covered by the span."""
    tracer = Tracer()
    # Reader-style: select fires outside the engine's round span -> counted.
    outer = tracer.begin("inventory_round", t=0.0, category="reader")
    tracer.event("select", t=0.0, category="gen2", extra_cost_s=0.25)
    _round(tracer, 0.25, 1.0, startup=0.1)
    tracer.end(outer, t=1.0)
    # Foreign-style: select fires *inside* a round span -> excluded.
    span = tracer.begin("round", t=1.0, category="gen2",
                        startup_s=0.1, n_slots=5, n_frames=1)
    tracer.event("select", t=1.0, category="gen2", extra_cost_s=0.75)
    tracer.end(span, t=2.0)
    analysis = _analyze(tracer.records)
    assert analysis["breakdown"]["select_extra_s"] == 0.25
    assert analysis["counts"]["selects"] == 2


def test_startup_cpu_share_derivation():
    result = BenchResult(
        name="x", scale="smoke", wall_s=1.0, sim_s=4.0,
        breakdown={"round_startup_s": 1.0, "slot_s": 3.0},
        counts={"slots": 100},
    )
    assert result.startup_cpu_share == 0.25
    assert result.slots_per_wall_s == 100.0
    empty = BenchResult(
        name="x", scale="smoke", wall_s=0.0, sim_s=0.0,
        breakdown={}, counts={},
    )
    assert empty.startup_cpu_share == 0.0
    assert empty.slots_per_wall_s == 0.0


# ----------------------------------------------------------------------
# Site attribution: site_reader spans are the site layer's cycles
# ----------------------------------------------------------------------
def _site_reader_span(tracer, reader, start, end, n_tags=50, n_rounds=2,
                      n_reports=10):
    span = tracer.begin("site_reader", t=start, category="site",
                        reader=reader, read_loss=0.1, n_tags=n_tags)
    tracer.end(span, t=end, n_reports=n_reports, n_rounds=n_rounds)


def test_analyze_counts_site_reader_spans_as_cycles():
    tracer = Tracer()
    _site_reader_span(tracer, reader=0, start=0.0, end=0.25)
    _site_reader_span(tracer, reader=1, start=0.0, end=0.25, n_tags=7)
    analysis = _analyze(tracer.records)
    assert analysis["counts"]["cycles"] == 2
    rows = analysis["readers"]
    assert [row["reader"] for row in rows] == [0, 1]
    assert rows[1]["n_tags"] == 7
    assert rows[0]["sim_s"] == 0.25
    assert rows[0]["n_rounds"] == 2 and rows[0]["n_reports"] == 10
    assert all(row["wall_s"] >= 0.0 for row in rows)


def test_site_bench_attribution_and_reader_table():
    """The site workload reports truthful cycles and a per-reader table."""
    result = run_bench("site", scale="smoke", warmup=0, repeats=1)
    assert result.counts["cycles"] > 0
    assert len(result.readers) == result.counts["cycles"]
    assert "readers" in result.to_dict()
    table = format_reader_table(result)
    assert "per-reader wall attribution" in table
    assert "shard tags" in table
    # Non-site workloads keep their historical JSON shape: no readers key.
    assert "readers" not in BenchResult(
        name="x", scale="smoke", wall_s=1.0, sim_s=1.0,
        breakdown={}, counts={},
    ).to_dict()


def test_write_bench_merges_tiers(tmp_path):
    """Secondary scales land under ``tiers`` and survive smoke rewrites."""
    smoke = BenchResult(
        name="site", scale="smoke", wall_s=1.0, sim_s=1.0,
        breakdown={}, counts={"slots": 10},
    )
    large = BenchResult(
        name="site", scale="large", wall_s=2.0, sim_s=4.0,
        breakdown={}, counts={"slots": 400},
    )
    out = str(tmp_path)
    path = write_bench(smoke, out)
    write_bench(large, out)
    data = json.loads(open(path).read())
    assert data["scale"] == "smoke"
    assert data["counts"]["slots"] == 10
    assert data["tiers"]["large"]["counts"]["slots"] == 400
    # Refreshing the smoke tier must not discard the committed large tier.
    write_bench(smoke, out)
    data = json.loads(open(path).read())
    assert data["tiers"]["large"]["counts"]["slots"] == 400
    # Refreshing the large tier must not perturb the smoke top level.
    write_bench(large, out)
    data = json.loads(open(path).read())
    assert data["scale"] == "smoke" and data["counts"]["slots"] == 10
    # A smoke write over a large-only file promotes smoke to the top.
    solo = str(tmp_path / "solo")
    import os
    os.makedirs(solo)
    path2 = write_bench(large, solo)
    write_bench(smoke, solo)
    data = json.loads(open(path2).read())
    assert data["scale"] == "smoke"
    assert data["tiers"]["large"]["counts"]["slots"] == 400


def _time_fig02(repeats=3):
    from repro.experiments import fig02_irr

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fig02_irr.run(tag_counts=(1, 5, 10, 20), initial_qs=(4,), repeats=4)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracer_overhead_is_small():
    """Acceptance: tracing off must cost < 2% wall on the fig02 workload.

    Timing comparisons on shared CI boxes are noisy, so the assertion
    allows generous headroom over the 2% budget while still catching a
    pathological regression (e.g. per-slot work no longer gated on
    ``tracer.enabled``).
    """
    baseline = _time_fig02()
    traced = Tracer()
    with use_tracer(traced):
        _time_fig02(repeats=1)
    disabled = _time_fig02()
    assert disabled <= baseline * 1.25 + 0.05
