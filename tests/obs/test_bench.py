"""Bench harness: budget reduction, JSON export, overhead acceptance."""

import json
import time

import pytest

from repro.obs import Tracer, use_tracer, validate_chrome_trace, to_chrome_trace
from repro.obs.bench import (
    WORKLOADS,
    format_report,
    run_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def fig02_result():
    return run_bench("fig02", scale="smoke")


def test_unknown_workload_and_scale_rejected():
    with pytest.raises(ValueError, match="unknown bench workload"):
        run_bench("fig99")
    with pytest.raises(ValueError, match="unknown bench scale"):
        run_bench("fig02", scale="huge")


def test_workload_registry():
    assert set(WORKLOADS) == {"fig02", "fig18", "site", "soak"}


def test_fig02_budget_reduction(fig02_result):
    result = fig02_result
    assert result.name == "fig02" and result.scale == "smoke"
    assert result.counts["rounds"] > 0
    assert result.counts["frames"] >= result.counts["rounds"]
    assert result.breakdown["round_startup_s"] > 0
    assert result.breakdown["slot_s"] > 0
    assert result.sim_s > 0
    assert result.wall_s > 0
    # Pure inventory: no Tagwatch cycles, no schedule/assess CPU.
    assert result.counts["cycles"] == 0
    assert result.breakdown["scheduler_cpu_s"] == 0.0
    assert "tau0_ms" in result.workload


def test_write_bench_json_shape(fig02_result, tmp_path):
    path = write_bench(fig02_result, str(tmp_path))
    assert path.endswith("BENCH_fig02.json")
    data = json.loads(open(path).read())
    assert data["name"] == "fig02"
    assert set(data) == {
        "name", "scale", "wall_s", "sim_s", "slots_per_wall_s",
        "breakdown", "counts", "workload",
    }
    assert data["counts"]["rounds"] == fig02_result.counts["rounds"]


def test_format_report_lists_each_workload(fig02_result):
    table = format_report([fig02_result])
    assert "fig02/smoke" in table
    assert "sim s" in table


def test_bench_reuses_ambient_tracer():
    tracer = Tracer()
    with use_tracer(tracer):
        result = run_bench("fig02", scale="smoke")
    assert result.counts["rounds"] > 0
    assert len(tracer.records) > 0  # the session trace kept the records
    assert validate_chrome_trace(to_chrome_trace(tracer)) == []


def _time_fig02(repeats=3):
    from repro.experiments import fig02_irr

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fig02_irr.run(tag_counts=(1, 5, 10, 20), initial_qs=(4,), repeats=4)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracer_overhead_is_small():
    """Acceptance: tracing off must cost < 2% wall on the fig02 workload.

    Timing comparisons on shared CI boxes are noisy, so the assertion
    allows generous headroom over the 2% budget while still catching a
    pathological regression (e.g. per-slot work no longer gated on
    ``tracer.enabled``).
    """
    baseline = _time_fig02()
    traced = Tracer()
    with use_tracer(traced):
        _time_fig02(repeats=1)
    disabled = _time_fig02()
    assert disabled <= baseline * 1.25 + 0.05
