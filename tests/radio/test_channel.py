"""Tests for the multipath backscatter channel."""

import numpy as np
import pytest

from repro.radio.channel import (
    Reflector,
    backscatter_gain,
    dominant_mode_phases,
    one_way_gain,
    path_loss_amplitude,
)
from repro.radio.constants import wavelength

FREQ = 922e6


class TestPathLoss:
    def test_monotonic_decreasing(self):
        lam = wavelength(FREQ)
        assert path_loss_amplitude(1.0, lam) > path_loss_amplitude(2.0, lam)

    def test_clamped_near_zero(self):
        lam = wavelength(FREQ)
        assert path_loss_amplitude(0.0, lam) == path_loss_amplitude(
            lam / 2, lam
        )


class TestBackscatterGain:
    def test_round_trip_phase(self):
        """The monostatic phase is -4*pi*d/lambda (twice the one-way)."""
        lam = wavelength(FREQ)
        d = 2.3
        gain = backscatter_gain((0, 0, 0), (d, 0, 0), FREQ)
        expected = np.mod(-4 * np.pi * d / lam, 2 * np.pi)
        assert np.mod(np.angle(gain), 2 * np.pi) == pytest.approx(
            expected, abs=1e-6
        )

    def test_magnitude_is_one_way_squared(self):
        g = one_way_gain((0, 0, 0), (2, 0, 0), FREQ)
        h = backscatter_gain((0, 0, 0), (2, 0, 0), FREQ)
        assert abs(h) == pytest.approx(abs(g) ** 2)

    def test_reflector_changes_phase(self):
        clean = backscatter_gain((0, 0, 0), (3, 0, 0), FREQ)
        dirty = backscatter_gain(
            (0, 0, 0),
            (3, 0, 0),
            FREQ,
            (Reflector((1.5, 0.5, 0), 0.5),),
        )
        assert np.angle(clean) != pytest.approx(np.angle(dirty), abs=1e-3)

    def test_one_cm_displacement_moves_phase(self):
        """The paper's 'natural amplifier': 1 cm -> ~0.39 rad round trip."""
        lam = wavelength(FREQ)
        g1 = backscatter_gain((0, 0, 0), (2.0, 0, 0), FREQ)
        g2 = backscatter_gain((0, 0, 0), (2.01, 0, 0), FREQ)
        delta = np.angle(g2 / g1)
        assert abs(delta) == pytest.approx(4 * np.pi * 0.01 / lam, rel=1e-3)


class TestReflector:
    def test_coefficient_bounds(self):
        with pytest.raises(ValueError):
            Reflector((0, 0, 0), coefficient=1.5)


class TestDominantModes:
    def test_mode_count(self):
        phases = dominant_mode_phases(
            (0, 0, 0), (3, 0, 0), FREQ, [(1.5, 0.4, 0), (1.5, -0.7, 0)]
        )
        assert len(phases) == 3

    def test_modes_distinct(self):
        phases = dominant_mode_phases(
            (0, 0, 0), (3, 0, 0), FREQ, [(1.5, 0.4, 0)]
        )
        assert abs(phases[0] - phases[1]) > 1e-3
