"""Tests for channel plans."""

import pytest

from repro.radio.constants import (
    SPEED_OF_LIGHT,
    ChannelPlan,
    china_920_926,
    single_channel,
    wavelength,
)


class TestWavelength:
    def test_uhf_band(self):
        assert wavelength(920e6) == pytest.approx(0.3258, rel=1e-3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            wavelength(0)


class TestChinaBand:
    def test_sixteen_channels(self):
        plan = china_920_926()
        assert len(plan) == 16

    def test_frequencies_in_band(self):
        plan = china_920_926()
        assert all(920e6 < f < 926e6 for f in plan.frequencies_hz)

    def test_channel_wraps(self):
        plan = china_920_926()
        assert plan.frequency(16) == plan.frequency(0)

    def test_hop_schedule(self):
        plan = china_920_926(hop_dwell_s=0.2)
        assert plan.channel_at(0.0) == 0
        assert plan.channel_at(0.25) == 1
        assert plan.channel_at(0.25, start_channel=3) == 4

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            china_920_926(0)


class TestSingleChannel:
    def test_one_frequency(self):
        plan = single_channel(922e6)
        assert len(plan) == 1
        assert plan.channel_at(1e6) == 0


class TestValidation:
    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            ChannelPlan("bad", ())

    def test_bad_dwell_rejected(self):
        with pytest.raises(ValueError):
            ChannelPlan("bad", (920e6,), hop_dwell_s=0)
