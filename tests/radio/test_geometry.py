"""Tests for geometry and Fresnel zones."""

import numpy as np
import pytest

from repro.radio.constants import wavelength
from repro.radio.geometry import (
    as_point,
    distance,
    fresnel_excess,
    fresnel_zone_index,
    point_on_fresnel_boundary,
)


class TestAsPoint:
    def test_2d_promoted(self):
        p = as_point((1.0, 2.0))
        assert p.shape == (3,)
        assert p[2] == 0.0

    def test_3d_preserved(self):
        assert list(as_point((1, 2, 3))) == [1.0, 2.0, 3.0]

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            as_point((1.0,))


class TestDistance:
    def test_pythagoras(self):
        assert distance((0, 0, 0), (3, 4, 0)) == 5.0


class TestFresnel:
    def test_on_axis_zero_excess(self):
        assert fresnel_excess((0, 0), (4, 0), (2, 0)) == pytest.approx(0.0)

    def test_excess_grows_off_axis(self):
        near = fresnel_excess((0, 0), (4, 0), (2, 0.1))
        far = fresnel_excess((0, 0), (4, 0), (2, 1.0))
        assert far > near

    def test_first_zone_on_axis(self):
        lam = wavelength(920e6)
        assert fresnel_zone_index((0, 0), (4, 0), (2, 0.01), lam) == 1

    def test_boundary_point_lands_on_zone_edge(self):
        lam = wavelength(920e6)
        for k in (1, 2, 5):
            p = point_on_fresnel_boundary((0, 0, 0), (4, 0, 0), k, lam)
            excess = fresnel_excess((0, 0, 0), (4, 0, 0), p)
            assert excess == pytest.approx(k * lam / 2, rel=1e-6)

    def test_zone_index_invalid_wavelength(self):
        with pytest.raises(ValueError):
            fresnel_zone_index((0, 0), (1, 0), (0.5, 0), 0.0)

    def test_boundary_invalid_zone(self):
        with pytest.raises(ValueError):
            point_on_fresnel_boundary((0, 0), (1, 0), 0, 0.3)

    def test_boundary_coincident_foci(self):
        with pytest.raises(ValueError):
            point_on_fresnel_boundary((0, 0), (0, 0), 1, 0.3)
