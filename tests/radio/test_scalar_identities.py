"""Machine-checks for the scalar fast paths' bit-identity claims.

Several hot paths replace numpy ufunc calls with scalar libm arithmetic
(``motion.position_xyz``, ``geometry.squared_distance_xyz``, the echo-free
branch of ``channel.one_way_gain_from_geometry``, the mixture's circular
distance).  Each replacement rests on a platform identity — libm rounds the
same as the ufunc, numpy's 3-dot contracts with FMA — and the source
docstrings promise those identities are machine-checked here.  The samples
are deterministic so a failure reproduces exactly.
"""

import math

import numpy as np

from repro.core.gmm import _circular_distance_scalar
from repro.radio.channel import (
    backscatter_gain_from_geometry,
    one_way_gain_from_geometry,
    path_loss_amplitude,
)
from repro.radio.constants import wavelength
from repro.radio.geometry import squared_distance_xyz
from repro.util.circular import TWO_PI, circular_distance
from repro.world.motion import CircularPath, LinearPath, Stationary

RNG = np.random.default_rng(20260809)


def test_scalar_cos_sin_match_numpy_ufuncs():
    angles = RNG.uniform(-1000.0, 1000.0, 5000)
    cos_ref = np.cos(angles)
    sin_ref = np.sin(angles)
    for a, c, s in zip(angles.tolist(), cos_ref.tolist(), sin_ref.tolist()):
        assert math.cos(a) == c
        assert math.sin(a) == s


def test_squared_distance_matches_np_dot():
    for row in RNG.normal(scale=5.0, size=(2000, 3)):
        x, y, z = row.tolist()
        assert squared_distance_xyz(x, y, z) == float(np.dot(row, row))


def test_scalar_one_way_gain_matches_numpy_chain():
    for d, f in zip(
        RNG.uniform(0.05, 20.0, 2000).tolist(),
        RNG.uniform(860e6, 960e6, 2000).tolist(),
    ):
        lam = wavelength(f)
        ref = complex(
            path_loss_amplitude(d, lam) * np.exp(-2j * np.pi * d / lam)
        )
        assert one_way_gain_from_geometry((d, ()), f) == ref
        assert backscatter_gain_from_geometry((d, ()), f) == ref * ref


def test_scalar_gain_with_echoes_unchanged():
    geometry = (1.5, ((0.4, 2.25), (0.2, 3.75)))
    lam = wavelength(915e6)
    g = path_loss_amplitude(1.5, lam) * np.exp(-2j * np.pi * 1.5 / lam)
    for coeff, d in geometry[1]:
        g += coeff * path_loss_amplitude(d, lam) * np.exp(-2j * np.pi * d / lam)
    assert one_way_gain_from_geometry(geometry, 915e6) == complex(g)


def test_position_xyz_matches_position_componentwise():
    trajectories = [
        Stationary((1.25, -0.5, 0.75)),
        LinearPath((0.0, 1.0, 0.5), (0.3, -0.2, 0.1), t0=0.25),
        CircularPath(center=(2.0, 3.0, 1.0), radius=0.7, speed=1.3,
                     phase0=0.4, start_time=0.1),
    ]
    for trajectory in trajectories:
        for t in RNG.uniform(0.0, 100.0, 500).tolist():
            assert trajectory.position_xyz(t) == tuple(
                trajectory.position(t).tolist()
            )


def test_circular_distance_scalar_matches_ndarray_helper():
    values = RNG.uniform(-4.0 * TWO_PI, 4.0 * TWO_PI, 2000)
    for a, b in zip(values.tolist(), values[::-1].tolist()):
        assert _circular_distance_scalar(a, b) == float(
            circular_distance(a, b)
        )
