"""Tests for the (phase, RSS) measurement model."""

import numpy as np
import pytest

from repro.radio.channel import backscatter_gain
from repro.radio.measurement import NoiseModel, TagObservation, measure

FREQ = 922e6


def observe(distance_m, noise=None, seed=1, tag_offset=0.0, lo=0.0):
    gain = backscatter_gain((0, 0, 0), (distance_m, 0, 0), FREQ)
    return measure(gain, tag_offset, lo, noise or NoiseModel(), rng=seed)


class TestMeasure:
    def test_phase_in_range(self):
        phase, _ = observe(2.0)
        assert 0 <= phase < 2 * np.pi

    def test_phase_quantised(self):
        noise = NoiseModel(phase_noise_std_rad=0.0)
        phase, _ = observe(2.0, noise)
        quantum = noise.phase_quantum_rad
        steps = phase / quantum
        assert steps == pytest.approx(round(steps), abs=1e-6)

    def test_rss_quantised_to_half_db(self):
        _, rss = observe(2.0)
        assert (rss * 2) == pytest.approx(round(rss * 2))

    def test_rss_decreases_with_distance(self):
        quiet = NoiseModel(rss_noise_std_db=0.0)
        _, near = observe(1.0, quiet)
        _, far = observe(4.0, quiet)
        assert near > far

    def test_tag_offset_shifts_phase(self):
        quiet = NoiseModel(phase_noise_std_rad=0.0, phase_quantum_rad=0.0)
        p0, _ = observe(2.0, quiet, tag_offset=0.0)
        p1, _ = observe(2.0, quiet, tag_offset=1.0)
        assert np.mod(p1 - p0, 2 * np.pi) == pytest.approx(1.0, abs=1e-9)

    def test_zero_gain_rejected(self):
        with pytest.raises(ValueError):
            measure(0j, 0.0, 0.0, NoiseModel())


class TestNoiseModel:
    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(phase_noise_std_rad=-0.1)

    def test_negative_quantum_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(rss_quantum_db=-0.5)


class TestTagObservation:
    def test_key(self):
        obs = TagObservation(
            epc=None,
            time_s=0.0,
            phase_rad=1.0,
            rss_dbm=-50.0,
            antenna_index=2,
            channel_index=7,
        )
        assert obs.key() == (2, 7)
