"""Toy-train tracking: the paper's Fig 1 application, end to end.

A tag rides a toy train around a circular track (r = 20 cm, 0.7 m/s) while
stationary tags share the channel.  The differential-hologram tracker
(Tagoram-style DAH) recovers the trajectory from RF phase readings; its
accuracy collapses when channel contention starves the mobile tag of reads,
and recovers when Tagwatch gives the mobile tag the channel back.

Run with::

    python examples/toy_train_tracking.py
"""

from repro.experiments import fig01_tracking
from repro.util.tables import format_table


def main() -> None:
    result = fig01_tracking.run(
        stationary_counts=(0, 8, 14), duration_s=6.0, seed=31
    )
    print(fig01_tracking.format_report(result))

    clean = result.case("read-all (1+0)")
    crowded = result.case("read-all (1+14)")
    adaptive = result.case("tagwatch (1+14)")
    print()
    print(
        format_table(
            ["observation", "value"],
            [
                [
                    "accuracy lost to contention",
                    f"{crowded.mean_error_cm / clean.mean_error_cm:.0f}x worse",
                ],
                [
                    "rate restored by Tagwatch",
                    f"{adaptive.mobile_irr_hz / crowded.mobile_irr_hz:.1f}x",
                ],
                [
                    "accuracy restored by Tagwatch",
                    f"{adaptive.mean_error_cm:.1f} cm "
                    f"(vs {clean.mean_error_cm:.1f} cm with no companions)",
                ],
            ],
            title="Fig 1 in one table",
        )
    )


if __name__ == "__main__":
    main()
