"""Quickstart: rate-adaptive reading in ~60 lines.

Builds a small simulated deployment (38 stationary tags + 2 tags spinning on
a turntable), runs the Tagwatch two-phase loop, and compares every tag's
individual reading rate (IRR) against plain read-everything inventory.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import Tagwatch, TagwatchConfig
from repro.experiments.harness import build_lab, read_all_irr
from repro.util.tables import format_table


def main() -> None:
    n_tags, n_mobile = 40, 2

    # --- baseline: plain continuous inventory --------------------------
    # partition=True is the paper's deployment: each antenna covers its
    # own cluster of tags.
    baseline = build_lab(
        n_tags=n_tags, n_mobile=n_mobile, seed=7, partition=True
    )
    baseline_irr, _ = read_all_irr(baseline, duration_s=10.0)

    # --- Tagwatch: two-phase rate-adaptive reading ---------------------
    setup = build_lab(n_tags=n_tags, n_mobile=n_mobile, seed=7, partition=True)
    tagwatch = setup.tagwatch(TagwatchConfig(phase2_duration_s=2.0))

    # Let the immobility models mature (a fresh deployment assumes every
    # tag is moving until it has evidence otherwise), then measure.
    tagwatch.warm_up(15.0)
    results = tagwatch.run(4)
    t0 = results[0].phase1_start_s
    t1 = results[-1].phase2_end_s

    mobile_values = setup.mobile_epc_values
    rows = []
    for epc in setup.epcs[:6]:
        kind = "mobile" if epc.value in mobile_values else "stationary"
        rows.append(
            [
                str(epc)[:12] + "...",
                kind,
                baseline_irr.get(epc.value, 0.0),
                tagwatch.history.irr(epc.value, t0, t1).irr_hz,
            ]
        )
    print(
        format_table(
            ["EPC", "state", "read-all IRR (Hz)", "Tagwatch IRR (Hz)"],
            rows,
            precision=1,
            title=f"Rate-adaptive reading: {n_mobile} mobile of {n_tags} tags",
        )
    )

    final = results[-1]
    print(
        f"\nlast cycle: {final.n_tags_seen} tags seen, "
        f"{len(final.target_epc_values)} targeted, "
        f"bitmasks={[str(b) for b in final.plan.selection.bitmasks] if final.plan else []}"
    )
    mobile_irrs = [
        tagwatch.history.irr(v, t0, t1).irr_hz for v in mobile_values
    ]
    base_irrs = [baseline_irr[v] for v in mobile_values]
    print(
        f"mobile-tag IRR gain: {np.mean(mobile_irrs) / np.mean(base_irrs):.1f}x"
    )


if __name__ == "__main__":
    main()
