"""Retail shelf monitoring: pick events from rate-adaptive readings.

The paper's ShopMiner motivation: a store wants to know *which* items
customers pick up and walk away with, out of hundreds sitting still.  This
example wires Tagwatch's delivery stream into a tiny event detector:

- an item that starts being targeted (motion detected) raises ``PICKED``;
- a targeted item that stops being read altogether raises ``LEFT`` (it was
  carried out of the antenna field).

Two items are picked during the run (one put back, one carried away) while
28 others sit on the shelves.

Run with::

    python examples/retail_shelf_events.py
"""

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core import Tagwatch, TagwatchConfig, TagwatchMonitor
from repro.gen2 import random_epc_population
from repro.radio.constants import single_channel
from repro.reader import LLRPClient, SimReader
from repro.util.rng import RngStream
from repro.util.tables import format_table
from repro.world import Antenna, Scene, Stationary, TagInstance, WaypointPath

PICK_A_AT = 30.0  # picked up, inspected, put back
PICK_B_AT = 37.0  # picked up and carried out of the store


@dataclass
class ShelfEvent:
    """One detected event."""

    time_s: float
    epc_hex: str
    kind: str  # PICKED / LEFT


def build_store(seed: int):
    """30 items on two shelves; two get handled mid-run."""
    streams = RngStream(seed)
    epcs = random_epc_population(30, rng=streams.child("epcs"))
    placement = streams.child("placement")
    tags: List[TagInstance] = []

    # Item A: lifted 30 cm, turned over for 4 s, put back.
    shelf_a = np.array([0.5, 2.0, 1.0])
    inspect = WaypointPath(
        [
            (PICK_A_AT, shelf_a),
            (PICK_A_AT + 1.0, shelf_a + (0.1, -0.3, 0.2)),
            (PICK_A_AT + 3.0, shelf_a + (-0.1, -0.25, 0.15)),
            (PICK_A_AT + 4.0, shelf_a),
        ]
    )
    tags.append(
        TagInstance(
            epc=epcs[0],
            trajectory=inspect,
            phase_offset_rad=float(placement.uniform(0, 2 * np.pi)),
        )
    )
    # Item B: carried toward the door, out of range at PICK_B_AT + 6.
    shelf_b = np.array([1.4, 2.0, 1.0])
    carried = WaypointPath(
        [
            (PICK_B_AT, shelf_b),
            (PICK_B_AT + 6.0, shelf_b + (6.0, -3.0, -0.2)),
        ]
    )
    tags.append(
        TagInstance(
            epc=epcs[1],
            trajectory=carried,
            exit_time=PICK_B_AT + 6.0,
            phase_offset_rad=float(placement.uniform(0, 2 * np.pi)),
        )
    )
    for i in range(2, 30):
        tags.append(
            TagInstance(
                epc=epcs[i],
                trajectory=Stationary(
                    (0.25 * (i % 10), 2.0 + 0.5 * (i // 10), 1.0)
                ),
                phase_offset_rad=float(placement.uniform(0, 2 * np.pi)),
            )
        )
    scene = Scene(
        [Antenna((-2.0, 0.0, 2.4), range_m=6.0),
         Antenna((2.0, 0.0, 2.4), range_m=6.0)],
        tags,
        channel_plan=single_channel(),
        seed=streams.child_seed("scene"),
    )
    return scene, epcs


def main() -> None:
    scene, epcs = build_store(seed=103)
    client = LLRPClient(SimReader(scene, seed=104))
    client.connect()
    tagwatch = Tagwatch(client, TagwatchConfig(phase2_duration_s=1.5))
    monitor = TagwatchMonitor(window=30)
    monitor.attach(tagwatch)

    tagwatch.warm_up(27.0)

    # Debounce: Phase I judges from one or two readings, so a single-cycle
    # flag is weak evidence (the paper runs ~10% FPR at its operating
    # point).  An item is PICKED only when targeted in two *consecutive*
    # cycles after a quiet spell, and LEFT once a picked item has vanished
    # from the scene for two consecutive cycles.
    events: List[ShelfEvent] = []
    quiet_cycles = {}  # epc value -> consecutive untargeted cycles
    gone_cycles = {}  # epc value -> consecutive unseen cycles
    ever_picked = set()  # items with an active PICKED episode
    previous_targets = set()
    while client.reader.time_s < 50.0:
        result = tagwatch.run_cycle()
        now = result.phase1_end_s
        for value in result.target_epc_values & previous_targets:
            if quiet_cycles.get(value, 99) >= 2 and value not in ever_picked:
                events.append(
                    ShelfEvent(now, f"{value:024x}"[:10] + "...", "PICKED")
                )
                ever_picked.add(value)
        for value in set(result.assessments) | result.target_epc_values:
            if value in result.target_epc_values:
                if value in previous_targets:
                    quiet_cycles[value] = 0
            else:
                quiet_cycles[value] = quiet_cycles.get(value, 0) + 1
                if quiet_cycles[value] >= 3:
                    ever_picked.discard(value)  # episode over (put back)
        for value in list(ever_picked):
            if value not in result.assessments:
                gone_cycles[value] = gone_cycles.get(value, 0) + 1
                if gone_cycles[value] == 2:
                    events.append(
                        ShelfEvent(now, f"{value:024x}"[:10] + "...", "LEFT")
                    )
                    ever_picked.discard(value)
            else:
                gone_cycles[value] = 0
        previous_targets = set(result.target_epc_values)

    print(
        format_table(
            ["time (s)", "item", "event"],
            [[e.time_s, e.epc_hex, e.kind] for e in events],
            precision=1,
            title="Shelf events (truth: item A handled at 30 s and put "
            "back; item B carried out from 37 s)",
        )
    )
    snap = monitor.snapshot()
    print(
        f"\nfleet health: {snap.mean_targets:.1f} targets/cycle, "
        f"{snap.fallback_fraction * 100:.0f}% fallback cycles, "
        f"p90 scheduling overhead {snap.p90_overhead_ms:.1f} ms"
    )


if __name__ == "__main__":
    main()
