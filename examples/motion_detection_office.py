"""Motion detection in a busy office (Sections 4 and 7.1).

Demonstrates the self-learning immobility models directly:

1. stationary tags are monitored while people walk around — the mixture
   learns one Gaussian mode per multipath state and stops flagging them;
2. one tag is then nudged 2 cm — the phase jump mismatches every learned
   mode and the tag is flagged as moving within a few readings;
3. the learned mixture of the most multipath-affected tag is printed
   (the paper's Fig 8).

Run with::

    python examples/motion_detection_office.py
"""

import numpy as np

from repro.core import MotionAssessor
from repro.experiments import fig08_gmm
from repro.gen2.epc import random_epc_population
from repro.radio.constants import single_channel
from repro.reader import SimReader
from repro.util.rng import RngStream
from repro.util.tables import format_table
from repro.world import (
    Antenna,
    Scene,
    Stationary,
    StepDisplacement,
    TagInstance,
    office_worker,
)


def main() -> None:
    streams = RngStream(17)
    epcs = random_epc_population(8, rng=streams.child("epcs"))
    nudge_time = 30.0

    tags = []
    for i, epc in enumerate(epcs):
        position = (0.4 * (i % 4), 1.2 + 0.4 * (i // 4), 0.8)
        if i == 0:
            # This one gets displaced 3 cm after the monitoring period.
            trajectory = StepDisplacement.random_direction(
                position, 0.03, nudge_time, rng=streams.child("nudge")
            )
        else:
            trajectory = Stationary(position)
        tags.append(TagInstance(epc=epc, trajectory=trajectory))

    scene = Scene(
        [Antenna((-3, 0, 1.5)), Antenna((3, 0, 1.5))],
        tags,
        ambient_objects=[
            office_worker((-4, -4), (4, 4), 60.0, rng=streams.child("p1")),
            office_worker((-4, -4), (4, 4), 60.0, rng=streams.child("p2")),
        ],
        channel_plan=single_channel(),
        seed=streams.child_seed("scene"),
    )
    reader = SimReader(scene, seed=streams.child_seed("reader"))
    assessor = MotionAssessor()

    # --- monitoring: learn the office --------------------------------
    # Feed the bulk of the monitoring period as training, close that
    # pseudo-cycle, then judge on a short fresh window (Tagwatch's own
    # Phase I does exactly this every cycle).
    observations, _ = reader.run_duration(nudge_time - 2.0)
    assessor.observe_all(observations)
    assessor.assess()  # close the training cycle
    observations, _ = reader.run_duration(2.0)
    assessor.observe_all(observations)
    verdicts = assessor.assess()
    rows = [
        [
            str(epc)[:12] + "...",
            verdicts[epc.value].n_readings,
            str(verdicts[epc.value].moving),
        ]
        for epc in epcs
        if epc.value in verdicts
    ]
    print(
        format_table(
            ["EPC", "readings", "judged moving"],
            rows,
            title=f"After {nudge_time:.0f}s of monitoring (people walking)",
        )
    )

    # --- the nudge ------------------------------------------------------
    observations, _ = reader.run_duration(1.0)
    assessor.observe_all(observations)
    verdicts = assessor.assess()
    nudged = verdicts[epcs[0].value]
    others_moving = sum(
        1 for e in epcs[1:] if verdicts.get(e.value) and verdicts[e.value].moving
    )
    print(
        f"\nafter a 3 cm nudge of tag 0: judged moving = {nudged.moving} "
        f"({nudged.n_motion_flags}/{nudged.n_readings} readings flagged); "
        f"false positives among the other 7: {others_moving}"
    )

    # --- Fig 8: the learned mixture ----------------------------------
    print()
    print(fig08_gmm.format_report(fig08_gmm.run(duration_s=45.0, seed=5)))


if __name__ == "__main__":
    main()
