"""Carton picking with real-world (SGTIN-96) EPCs.

The paper deploys tags with *random* EPCs — the worst case for bitmask
grouping, where the greedy set cover only modestly beats one-Select-per-tag.
Production tags carry GS1 SGTIN-96 codes: every item of one SKU shares its
leading ~58 bits, so when a forklift picks up a whole carton, one short
bitmask covers every moving tag at once.

This example builds a warehouse population from a few companies' SKUs,
declares one carton (8 items of one SKU) as the moving targets, and compares
the Phase II schedules the greedy and naive selectors produce — then runs
both against the simulated reader.

Run with::

    python examples/sgtin_carton_picking.py
"""

from collections import defaultdict

import numpy as np

from repro.core import PAPER_R420, TargetScheduler
from repro.experiments.harness import irr_by_tag
from repro.gen2 import Sgtin96, warehouse_population
from repro.radio.constants import single_channel
from repro.reader import SimReader
from repro.util.rng import RngStream
from repro.util.tables import format_table
from repro.world import Antenna, Scene, Stationary, TagInstance


def build_warehouse(seed: int):
    """A shelf of 100 SGTIN-tagged items covered by one antenna."""
    streams = RngStream(seed)
    tags, lines = warehouse_population(
        100, n_companies=3, skus_per_company=4, rng=streams.child("epcs")
    )
    placement = streams.child("placement")
    instances = [
        TagInstance(
            epc=epc,
            trajectory=Stationary(
                (0.25 * (i % 20), 1.5 + 0.3 * (i // 20), 0.8)
            ),
            phase_offset_rad=float(placement.uniform(0, 2 * np.pi)),
        )
        for i, epc in enumerate(tags)
    ]
    scene = Scene(
        [Antenna((2.5, -1.5, 1.8))],
        instances,
        channel_plan=single_channel(),
        seed=streams.child_seed("scene"),
    )
    return scene, tags


def pick_carton(tags):
    """The largest single-SKU group: the carton the forklift grabs."""
    by_sku = defaultdict(list)
    for index, tag in enumerate(tags):
        identity = Sgtin96.decode(tag)
        by_sku[(identity.company_prefix, identity.item_reference)].append(index)
    _, indices = max(by_sku.items(), key=lambda kv: len(kv[1]))
    return indices[:8]


def main() -> None:
    scene, tags = build_warehouse(seed=71)
    carton = pick_carton(tags)
    target_values = {tags[i].value for i in carton}

    rows = []
    for method in ("greedy", "naive"):
        scheduler = TargetScheduler(PAPER_R420, method=method, rng=1)
        plan = scheduler.plan(tags, target_values, (0,), 5.0)
        selection = plan.selection
        # Execute the schedule against a fresh reader and measure.
        fresh_scene, _ = build_warehouse(seed=71)
        reader = SimReader(fresh_scene, seed=72)
        t0 = reader.time_s
        observations, _ = reader.execute_rospec(plan.rospec)
        irr = irr_by_tag(observations, t0, reader.time_s)
        target_irr = float(
            np.mean([irr.get(v, 0.0) for v in target_values])
        )
        rows.append(
            [
                method,
                len(selection.bitmasks),
                str(selection.bitmasks[0]) if selection.bitmasks else "-",
                selection.n_collateral,
                selection.total_cost_s * 1e3,
                target_irr,
            ]
        )
    print(
        format_table(
            [
                "selector",
                "masks",
                "first mask",
                "collateral",
                "sweep (ms)",
                "carton IRR (Hz)",
            ],
            rows,
            precision=1,
            title=(
                "Picking one carton (8 items of one SKU) out of 100 "
                "SGTIN-tagged items"
            ),
        )
    )
    greedy_irr, naive_irr = rows[0][-1], rows[1][-1]
    print(
        f"\nstructured EPCs let the set cover win {greedy_irr / naive_irr:.1f}x "
        "over per-EPC Selects (vs ~1.1-1.3x with the paper's random EPCs)"
    )


if __name__ == "__main__":
    main()
