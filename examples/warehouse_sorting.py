"""Warehouse sorting gate: the scenario that motivated the paper.

Section 2.4's case study: a conveyor gate reads packages as they transit,
but parked (already sorted) packages sitting in the reader's field hog the
channel — one stuck package was read 90,000 times while conveyed packages
got fewer than 5 reads each.

This example builds the scene physically — a conveyor carrying packages
through a two-antenna gate, with a wall of parked packages nearby — and
shows what Tagwatch does to the conveyed packages' read counts, then prints
the statistics of the synthetic 4-hour TrackPoint trace for comparison with
the paper's numbers.

Run with::

    python examples/warehouse_sorting.py
"""

import numpy as np

from repro.core import Tagwatch, TagwatchConfig
from repro.experiments import fig03_trace
from repro.gen2.epc import random_epc_population
from repro.radio.constants import single_channel
from repro.reader import LLRPClient, SimReader
from repro.util.rng import RngStream
from repro.util.tables import format_table
from repro.world import Antenna, ConveyorPath, Scene, Stationary, TagInstance


def build_gate(seed: int):
    """A sorting gate: 2 antennas over a conveyor, 24 parked + 8 conveyed."""
    streams = RngStream(seed)
    epcs = random_epc_population(32, rng=streams.child("epcs"))
    placement = streams.child("placement")
    tags = []
    # Conveyed packages enter every ~6 s and take 8 s to cross the gate.
    for i in range(8):
        tags.append(
            TagInstance(
                epc=epcs[i],
                trajectory=ConveyorPath(
                    start=(-4.0, 0.0, 0.6),
                    end=(4.0, 0.0, 0.6),
                    speed=1.0,
                    enter_time=14.0 + 6.0 * i,
                ),
                phase_offset_rad=float(placement.uniform(0, 2 * np.pi)),
            )
        )
    # Parked packages: sorted pallets sitting beside the gate.
    for i in range(24):
        tags.append(
            TagInstance(
                epc=epcs[8 + i],
                trajectory=Stationary(
                    (1.5 + 0.3 * (i % 8), 2.0 + 0.4 * (i // 8), 0.6)
                ),
                phase_offset_rad=float(placement.uniform(0, 2 * np.pi)),
            )
        )
    # Gate antennas have a short range: packages are only readable while
    # near the gate; the parked pallets sit just inside the field edge,
    # like the paper's troublesome sorted packages.
    scene = Scene(
        [
            Antenna((0.0, -1.0, 2.2), range_m=3.5),
            Antenna((0.0, 1.0, 2.2), range_m=3.5),
        ],
        tags,
        channel_plan=single_channel(),
        seed=streams.child_seed("scene"),
    )
    return scene, epcs


def transit_reads(observations_by_value, tags):
    """Reads of each conveyed package during its own transit window."""
    counts = []
    for i in range(8):
        trajectory = tags[i].trajectory
        times = observations_by_value.get(tags[i].epc.value, [])
        counts.append(
            sum(
                1
                for t in times
                if trajectory.enter_time <= t <= trajectory.exit_time
            )
        )
    return counts


def main() -> None:
    duration = 70.0

    # --- read-all gate ---------------------------------------------------
    scene, epcs = build_gate(seed=3)
    tags = scene.tags
    reader = SimReader(scene, seed=4)
    observations, _ = reader.run_duration(duration)
    times_all = {}
    for obs in observations:
        times_all.setdefault(obs.epc.value, []).append(obs.time_s)
    transit_all = transit_reads(times_all, tags)

    # --- Tagwatch gate -----------------------------------------------------
    scene, epcs = build_gate(seed=3)
    tags = scene.tags
    client = LLRPClient(SimReader(scene, seed=4))
    client.connect()
    tagwatch = Tagwatch(client, TagwatchConfig(phase2_duration_s=2.0))
    times_tw = {}
    tagwatch.subscribe(
        lambda obs: times_tw.setdefault(obs.epc.value, []).append(obs.time_s)
    )
    tagwatch.warm_up(13.0)
    while client.reader.time_s < duration:
        tagwatch.run_cycle()
    transit_tw = transit_reads(times_tw, tags)

    rows = [
        [f"package {i}", transit_all[i], transit_tw[i]]
        for i in range(8)
    ]
    parked_all = np.mean([len(times_all.get(epcs[8 + i].value, [])) for i in range(24)])
    parked_tw = np.mean([len(times_tw.get(epcs[8 + i].value, [])) for i in range(24)])
    rows.append(["parked total (mean of 24)", parked_all, parked_tw])
    print(
        format_table(
            ["tag", "reads (read-all)", "reads (Tagwatch)"],
            rows,
            precision=0,
            title="Sorting gate: reads per package while transiting the gate",
        )
    )
    gain = np.mean(transit_tw) / max(1.0, np.mean(transit_all))
    print(f"\nconveyed packages read {gain:.1f}x more often under Tagwatch\n")

    # --- the paper's 4-hour trace, statistically ------------------------
    print(fig03_trace.format_report(fig03_trace.run(seed=13)))


if __name__ == "__main__":
    main()
