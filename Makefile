# Convenience targets; everything is plain pytest underneath.

.PHONY: install test test-faults bench examples reproduce clean

install:
	python setup.py develop

test:
	pytest tests/

test-faults:
	pytest tests/faults tests/util/test_metrics.py \
		tests/core/test_cover_properties.py tests/test_golden_traces.py

bench:
	pytest benchmarks/ --benchmark-only -s

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

reproduce:
	python -m repro reproduce --scale paper --out reproduction_report.md

clean:
	rm -rf .pytest_cache .benchmarks src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
