# Convenience targets; everything is plain pytest underneath.

.PHONY: install test test-faults test-runtime test-site bench bench-smoke bench-micro bench-compare bench-refresh soak soak-smoke site-smoke site-scale-smoke site-chaos-smoke health-smoke examples reproduce clean

install:
	python setup.py develop

test:
	pytest tests/

test-faults:
	pytest tests/faults tests/util/test_metrics.py \
		tests/core/test_cover_properties.py tests/test_golden_traces.py

test-runtime:
	pytest tests/runtime

test-site:
	pytest tests/site tests/experiments/test_fig_redundancy.py \
		tests/experiments/test_parallel.py \
		tests/experiments/test_site_soak.py tests/faults/test_site_plan.py

bench:
	python -m repro bench --name all --scale smoke

bench-smoke:
	python -m repro bench --name fig02 --scale smoke \
		--trace-out trace_fig02.json --out-dir .

bench-micro:
	pytest benchmarks/ --benchmark-only -s

# Perf gate: re-run the workloads and fail if simulated-slots-per-second
# drops more than 25% below the committed BENCH_<name>.json baselines.
bench-compare:
	python -m repro bench-compare --name all --scale smoke

# Intentional-change override for the perf gate: regenerate the committed
# baselines.  Run on a quiet machine, eyeball the diff, commit it with the
# change that moved the numbers.
bench-refresh:
	python -m repro bench --name all --scale smoke --out-dir .

# Full chaos soak: 2000 supervised cycles under the seeded fault schedule
# (reader crashes, jamming, blackouts, churn, kills, checkpoint
# corruption); exits non-zero on any runtime-invariant violation.
soak:
	python -m repro soak --cycles 2000 --seed 0 --out soak_report.json

# Short soak for CI: same chaos density, far fewer cycles.
soak-smoke:
	python -m repro soak --cycles 300 --seed 1 \
		--crash-every 40 --kill-every 100 --corrupt-every 120 \
		--jam-every 50 --blackout-every 60 --out soak_report.json

# Multi-reader site smoke: a small 4-reader/1k-tag warehouse site, sharded
# across the pool, with the fusion invariant suite and a differential check
# (sharded byte-identical to sequential); exits non-zero on any mismatch.
site-smoke:
	python -m repro site --readers 4 --tags 1000 --duration 0.5 \
		--workers 4 --check-differential --out site_run.json

# Site-scale smoke: a 12-reader/2k-tag aisle big enough for the
# visibility cull and the columnar fusion engine to actually engage.
# --check-differential re-runs the site sequentially with culling off and
# the reference fusion engine, so one byte-equality check crosses every
# fast-path switch at once (docs/site.md#scaling-to-10k100k-tags).
site-scale-smoke:
	python -m repro site --layout line --readers 12 --tags 2000 \
		--duration 0.25 --workers 4 --check-differential \
		--out site_scale_run.json

# Site chaos smoke: a supervised 3-reader site where the seeded plan
# kills one reader mid-run.  The supervisor must detect the death,
# re-plan channels over the survivors, warm-rejoin the reader, and
# converge with zero invariant violations, byte-identically across
# worker counts — cutting exactly one schema-valid incident bundle
# (the CLI validates every bundle before exiting).
site-chaos-smoke:
	rm -rf site_chaos_bundles
	python -m repro site --chaos --readers 3 --tags 24 --epochs 12 \
		--outages 1 --mobile 2 --seed 11 --workers 4 \
		--check-differential --bundle-dir site_chaos_bundles \
		--out site_chaos.json
	python -c "from repro.obs.health import list_bundles; \
		cut = list_bundles('site_chaos_bundles'); \
		assert len(cut) == 1, [p.name for p in cut]; \
		print('site chaos smoke OK: one bundle, ' + cut[0].name)"

# Health smoke: a supervised run with every antenna blacked out for one
# 30 s window.  The forced outage must escalate exactly once, cutting
# exactly one incident bundle; the health CLI schema-validates each
# bundle before exiting (nonzero on any validation problem).
health-smoke:
	rm -rf health_bundles
	python -m repro health --cycles 40 \
		--blackout 0:15:45 --blackout 1:15:45 \
		--blackout 2:15:45 --blackout 3:15:45 \
		--bundle-dir health_bundles --out health_report.json
	python -c "from repro.obs.health import list_bundles; \
		cut = list_bundles('health_bundles'); \
		assert len(cut) == 1, [p.name for p in cut]; \
		print('health smoke OK: one bundle, ' + cut[0].name)"

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

reproduce:
	python -m repro reproduce --scale paper --out reproduction_report.md

clean:
	rm -rf .pytest_cache .benchmarks src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
