# Convenience targets; everything is plain pytest underneath.

.PHONY: install test bench examples reproduce clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

reproduce:
	python -m repro reproduce --scale paper --out reproduction_report.md

clean:
	rm -rf .pytest_cache .benchmarks src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
