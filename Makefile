# Convenience targets; everything is plain pytest underneath.

.PHONY: install test test-faults bench bench-smoke bench-micro examples reproduce clean

install:
	python setup.py develop

test:
	pytest tests/

test-faults:
	pytest tests/faults tests/util/test_metrics.py \
		tests/core/test_cover_properties.py tests/test_golden_traces.py

bench:
	python -m repro bench --name all --scale smoke

bench-smoke:
	python -m repro bench --name fig02 --scale smoke \
		--trace-out trace_fig02.json --out-dir .

bench-micro:
	pytest benchmarks/ --benchmark-only -s

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

reproduce:
	python -m repro reproduce --scale paper --out reproduction_report.md

clean:
	rm -rf .pytest_cache .benchmarks src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
