"""Raw-engine throughput benchmarks (not a paper figure).

These give pytest-benchmark real repeated timings for the hot paths:
slot-level inventory simulation and Phase II planning.
"""

from repro.core.cost import PAPER_R420
from repro.core.scheduler import TargetScheduler
from repro.gen2.aloha import QAdaptive
from repro.gen2.inventory import InventoryEngine
from repro.gen2.timing import R420_PROFILE
from repro.gen2.epc import random_epc_population


def test_inventory_round_throughput(benchmark):
    engine = InventoryEngine(
        R420_PROFILE, lambda: QAdaptive(initial_q=4), rng=1
    )
    log = benchmark(engine.run_round, range(50))
    assert len(log.reads) == 50


def test_scheduler_planning_throughput(benchmark):
    population = random_epc_population(200, rng=2)
    scheduler = TargetScheduler(PAPER_R420, rng=3)
    targets = {population[i].value for i in range(10)}
    # Prime the window cache as a steady-state cycle would have it.
    scheduler.plan(population, targets, (0,), 5.0)
    plan = benchmark(scheduler.plan, population, targets, (0,), 5.0)
    assert plan.rospec is not None
