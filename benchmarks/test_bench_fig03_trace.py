"""Fig 3/4 benchmark: the TrackPoint warehouse trace statistics.

Paper: 367,536 reads of 527 tags over ~4 h; the stuck tag read ~90,000
times; 10% of tags read >655 times, 20% >205; conveyed tags read <5 times
per transit against a ~50-read target.
"""

from conftest import run_once

from repro.experiments import fig03_trace


def test_fig03_trace(benchmark):
    result = run_once(benchmark, fig03_trace.run, seed=13)
    print()
    print(fig03_trace.format_report(result))

    assert 250_000 < result.n_reads < 500_000
    assert 480 < result.n_tags < 560
    assert result.top_tag_reads == 90_000
    assert result.reads_at_top_10pct > 500
    assert result.reads_at_top_20pct > 150
    assert result.conveyed_mean_reads < 5
    assert result.conveyed_under_5_fraction > 0.75
