"""Design-choice ablations at full scale (channel keying, vote rule,
Phase II length).  These back the claims in DESIGN.md's decision list."""

from conftest import run_once

from repro.experiments import ablations


def test_channel_keying(benchmark):
    result = run_once(
        benchmark, ablations.run_channel_keying,
        n_tags=8, duration_s=60.0, warmup_s=40.0,
    )
    print()
    print(ablations.format_channel_keying(result))
    assert result.fpr_keyed < 0.05
    assert result.fpr_merged > 2 * result.fpr_keyed


def test_vote_rule(benchmark):
    result = run_once(benchmark, ablations.run_vote_rule, n_tags=20, n_cycles=6)
    print()
    print(ablations.format_vote_rule(result))
    for _, targeting_rate, false_rate in result.rows:
        assert targeting_rate >= 0.8
        assert false_rate < 3.0


def test_phase2_sweep(benchmark):
    result = run_once(
        benchmark, ablations.run_phase2_sweep,
        durations_s=(0.5, 1.0, 2.0, 5.0), n_tags=20,
    )
    print()
    print(ablations.format_phase2_sweep(result))
    assert result.mobile_irr_hz[-1] >= result.mobile_irr_hz[0]
    assert result.detection_latency_s == sorted(result.detection_latency_s)


def _sgtin_comparison():
    """Greedy-vs-naive sweep costs on SGTIN-structured populations."""
    from collections import defaultdict

    from repro.core.bitmask import IndexedBitmaskTable
    from repro.core.cost import PAPER_R420
    from repro.core.setcover import naive_selection, select_bitmasks
    from repro.gen2.sgtin import Sgtin96, warehouse_population

    tags, _ = warehouse_population(
        200, n_companies=3, skus_per_company=4, rng=7
    )
    by_sku = defaultdict(list)
    for index, tag in enumerate(tags):
        identity = Sgtin96.decode(tag)
        by_sku[(identity.company_prefix, identity.item_reference)].append(index)
    carton = max(by_sku.values(), key=len)[:10]
    table = IndexedBitmaskTable(tags)
    rows = table.candidate_rows(carton)
    greedy = select_bitmasks(
        rows, carton, [tags[i] for i in carton], len(tags), PAPER_R420, rng=1
    )
    naive = naive_selection([tags[i] for i in carton], PAPER_R420)
    return greedy, naive


def test_sgtin_structured_populations(benchmark):
    greedy, naive = run_once(benchmark, _sgtin_comparison)
    print()
    print(
        f"SGTIN carton of 10: greedy {len(greedy.bitmasks)} mask(s) at "
        f"{greedy.total_cost_s * 1e3:.1f} ms vs naive "
        f"{naive.total_cost_s * 1e3:.1f} ms "
        f"({naive.total_cost_s / greedy.total_cost_s:.1f}x)"
    )
    # One SKU shares its leading ~58 bits: a whole carton collapses into
    # very few masks, and the cost advantage is large.
    assert len(greedy.bitmasks) <= 3
    assert naive.total_cost_s / greedy.total_cost_s > 2.5


def _aispec_mode_rows():
    """Live-loop IRR gain under the paper's two LLRP realisations."""
    import numpy as np

    from repro.core import TagwatchConfig
    from repro.experiments.harness import build_lab, read_all_irr

    rows = []
    for mode in ("per-bitmask", "single"):
        setup = build_lab(n_tags=100, n_mobile=5, seed=101, partition=True)
        tagwatch = setup.tagwatch(
            TagwatchConfig(
                phase2_duration_s=1.5,
                aispec_mode=mode,
                fallback_fraction=1.0,
            )
        )
        tagwatch.warm_up(30.0)
        results = tagwatch.run(5)
        t0 = results[1].phase1_start_s
        t1 = results[-1].phase2_end_s
        adaptive = np.mean(
            [
                tagwatch.history.irr(v, t0, t1).irr_hz
                for v in setup.mobile_epc_values
            ]
        )
        baseline_setup = build_lab(
            n_tags=100, n_mobile=5, seed=101, partition=True
        )
        baseline, _ = read_all_irr(baseline_setup, duration_s=t1 - t0)
        base = np.mean(
            [baseline[v] for v in setup.mobile_epc_values]
        )
        rows.append([mode, float(adaptive), float(adaptive / base)])
    return rows


def test_aispec_mode(benchmark):
    from repro.util.tables import format_table

    rows = run_once(benchmark, _aispec_mode_rows)
    print()
    print(
        format_table(
            ["Phase II realisation", "mobile IRR (Hz)", "gain vs read-all"],
            rows,
            title=(
                "Ablation — multiple AISpecs (paper default) vs one AISpec "
                "with multiple C1G2Filters (5 mobile of 100)"
            ),
        )
    )
    by_mode = {name: gain for name, _, gain in rows}
    # In a *partitioned* deployment the antenna hints already collapse the
    # per-mask start-ups (each mask runs on one antenna), so the two
    # realisations land within ~15% of each other; the single-AISpec mode
    # wins decisively only when several targets share one antenna (see
    # tests/core/test_aispec_mode.py's single-antenna comparison).
    assert by_mode["single"] >= 0.85 * by_mode["per-bitmask"]
    assert by_mode["per-bitmask"] > 2.0  # both remain solidly adaptive
