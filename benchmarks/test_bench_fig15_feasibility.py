"""Fig 15/16 benchmark: schedule feasibility with 2 and 5 of 40 targets.

Paper (Fig 15, 2/40): Tagwatch lifts target IRR from 13 to 47 Hz (+261%),
naive reaches 24 Hz; non-targets drop to ~0 during Phase II.
Paper (Fig 16, 5/40): Tagwatch still gains (+120%) while naive's
per-target Select start-ups erode most of its advantage.
"""

from conftest import run_once

from repro.experiments import fig15_feasibility


def run_both():
    two = fig15_feasibility.run(n_targets=2, duration_s=10.0, seed=19)
    five = fig15_feasibility.run(n_targets=5, duration_s=10.0, seed=19)
    return two, five


def test_fig15_16_feasibility(benchmark):
    two, five = run_once(benchmark, run_both)
    print()
    print(fig15_feasibility.format_report(two))
    print()
    print(fig15_feasibility.format_report(five))

    # Fig 15 (2/40): Tagwatch's absolute target IRR lands near the paper's
    # 47 Hz; naive near its 24 Hz; ordering tagwatch > naive > read-all.
    assert 35 < two.schemes["tagwatch"].target_irr_mean_hz < 60
    assert two.gain("tagwatch") > two.gain("naive") > 1.0
    assert (
        two.schemes["tagwatch"].nontarget_irr_mean_hz
        < 0.2 * two.schemes["read-all"].nontarget_irr_mean_hz
    )
    # Fig 16 (5/40): gains shrink for both; naive shrinks harder.
    assert five.gain("tagwatch") < two.gain("tagwatch")
    assert five.gain("naive") < two.gain("naive")
    assert five.gain("tagwatch") > five.gain("naive")
