"""Fig 2 benchmark: empirical IRR vs tag count against the model.

Paper: IRR falls from 63 Hz to 12 Hz (84% drop) by n~40; the analytic
Lambda(n) = 1/(tau_0 + n e tau_bar ln n) tracks the measured trend with
fitted tau_0 = 19 ms, tau_bar = 0.18 ms.
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig02_irr


def test_fig02_irr(benchmark):
    result = run_once(
        benchmark, fig02_irr.run,
        tag_counts=(1, 2, 5, 10, 15, 20, 25, 30, 35, 40),
        initial_qs=(4, 2, 6),
        repeats=20,
        seed=1,
    )
    print()
    print(fig02_irr.format_report(result))

    assert result.drop_fraction > 0.75  # paper: 84%
    assert 0.015 < result.fitted.tau0_s < 0.025  # paper: 19 ms
    assert 0.0001 < result.fitted.tau_bar_s < 0.0006  # paper: 0.18 ms
    measured = np.array(result.curves[0].irr_hz)
    model = np.array(result.model_irr_hz)
    # Model tracks the measurement trend (paper: "agrees well ... in trend").
    assert np.corrcoef(measured, model)[0, 1] > 0.99
