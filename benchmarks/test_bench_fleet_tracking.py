"""Footnote-1 benchmark: multiple mobile objects tracked concurrently.

Three toy trains on separate tracks among ten stationary tags; Tagwatch
feeds the fleet tracker.  All three must track to centimetres while the
stationary tags' reading rate is suppressed.
"""

import numpy as np
from conftest import run_once

from repro.core import Tagwatch, TagwatchConfig
from repro.gen2.epc import random_epc_population
from repro.radio.constants import single_channel
from repro.reader import LLRPClient, SimReader
from repro.tracking import DahConfig, FleetTracker, evaluate_track
from repro.util.rng import RngStream
from repro.util.tables import format_table
from repro.world import Antenna, CircularPath, Scene, Stationary, TagInstance

MOVE_TIME = 24.0


def run_fleet():
    streams = RngStream(121)
    epcs = random_epc_population(13, rng=streams.child("epcs"))
    # Three targets share Phase II, so each train's per-antenna read rate
    # is about a third of the single-train case; the lambda/4 unwrapping
    # bound then caps trackable speed near 0.4 m/s (see repro.tracking.dah).
    tracks = [
        CircularPath((1.2, 0.0, 0.8), 0.2, 0.40, start_time=MOVE_TIME),
        CircularPath((-1.2, 0.5, 0.8), 0.25, 0.35, start_time=MOVE_TIME),
        CircularPath((0.0, -1.2, 0.8), 0.22, 0.38, start_time=MOVE_TIME),
    ]
    placement = streams.child("placement")
    tags = [
        TagInstance(epc=epcs[i], trajectory=tracks[i],
                    phase_offset_rad=float(placement.uniform(0, 6.28)))
        for i in range(3)
    ]
    for i in range(3, 13):
        tags.append(
            TagInstance(
                epc=epcs[i],
                trajectory=Stationary((0.3 * i - 1.8, 2.4, 0.8)),
                phase_offset_rad=float(placement.uniform(0, 6.28)),
            )
        )
    # 10 m range so every track stays inside all four antennas' fields
    # (the default 8 m leaves the outermost track marginal).
    antennas = [
        Antenna((5, 5, 1.5), range_m=10.0),
        Antenna((-5, 5, 1.5), range_m=10.0),
        Antenna((-5, -5, 1.5), range_m=10.0),
        Antenna((5, -5, 1.5), range_m=10.0),
    ]
    scene = Scene(antennas, tags, channel_plan=single_channel(),
                  seed=streams.child_seed("scene"))
    client = LLRPClient(SimReader(scene, seed=streams.child_seed("reader")))
    client.connect()
    tagwatch = Tagwatch(
        client,
        TagwatchConfig(phase2_duration_s=4.0).with_concerned(epcs[:3]),
    )
    # With three targets sharing the channel the per-antenna gaps sit at
    # the plain-unwrap margin; velocity-aided unwrapping (the full DAH
    # behaviour) restores the headroom.
    fleet = FleetTracker(
        [a.position for a in antennas],
        scene.channel_plan,
        DahConfig(velocity_aided_unwrap=True),
    )
    delivered = []
    tagwatch.subscribe(delivered.append)
    tagwatch.warm_up(MOVE_TIME - 4.0)
    while client.reader.time_s < MOVE_TIME + 8.0:
        tagwatch.run_cycle()
    calibration = [o for o in delivered if o.time_s < MOVE_TIME - 0.3]
    for i in range(3):
        fleet.register(epcs[i].value, tracks[i].position(0.0), calibration)
    fleet.feed_all([o for o in delivered if o.time_s >= MOVE_TIME - 0.3])
    rows = []
    for i in range(3):
        estimates = [
            e for e in fleet.estimates(epcs[i].value)
            if e.time_s > MOVE_TIME + 0.5
        ]
        accuracy = evaluate_track(estimates, tracks[i])
        irr = tagwatch.history.irr(
            epcs[i].value, MOVE_TIME, MOVE_TIME + 8.0
        ).irr_hz
        rows.append(
            [f"train {i}", irr, accuracy.mean_error_cm,
             accuracy.p90_error_m * 100, accuracy.n_estimates]
        )
    return rows


def test_fleet_tracking(benchmark):
    rows = run_once(benchmark, run_fleet)
    print()
    print(
        format_table(
            ["tag", "IRR (Hz)", "mean err (cm)", "p90 (cm)", "fixes"],
            rows,
            precision=1,
            title=(
                "Footnote 1 — three mobile objects among ten stationary "
                "tags, tracked from Tagwatch's delivery stream"
            ),
        )
    )
    for _, irr, mean_err, _, fixes in rows:
        assert irr > 10.0
        assert mean_err < 5.0
        assert fixes > 30
