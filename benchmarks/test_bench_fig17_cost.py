"""Fig 17 benchmark: scheduling overhead CDF.

Paper: motion assessment + bitmask selection cost <4 ms in 50% of cycles
and <6 ms in 90% — negligible against 5 s cycles.
"""

from conftest import run_once

from repro.experiments import fig17_cost


def test_fig17_cost(benchmark):
    result = run_once(
        benchmark, fig17_cost.run,
        n_tags=60,
        n_mobile=3,
        n_cycles=40,
        warmup_cycles=8,
        phase2_duration_s=1.0,
        seed=23,
    )
    print()
    print(fig17_cost.format_report(result))

    assert result.p50_ms < 10.0  # paper: <4 ms on their CPU
    assert result.p90_ms < 20.0  # paper: <6 ms
    # Negligible against the cycle length, the paper's actual claim.
    assert result.p90_ms / 1000.0 < 0.02 * result.cycle_duration_s
