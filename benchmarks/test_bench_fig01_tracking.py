"""Fig 1 benchmark: tracking accuracy vs stationary company.

Paper: read-all degrades 1.8 -> 6 -> 10.6 cm as contention rises from
68 Hz to 21 Hz; Tagwatch restores 3.34 cm at the worst contention.  The
reproduction hits the same rate operating points with more companions
(see the driver docstring) and shows the same collapse + restoration.
"""

from conftest import run_once

from repro.experiments import fig01_tracking


def test_fig01_tracking(benchmark):
    result = run_once(
        benchmark, fig01_tracking.run,
        stationary_counts=(0, 8, 14), duration_s=6.0, seed=31,
    )
    print()
    print(fig01_tracking.format_report(result))

    clean = result.case("read-all (1+0)")
    crowded = result.case("read-all (1+14)")
    adaptive = result.case("tagwatch (1+14)")
    # Shape assertions: degradation with contention, restoration by Tagwatch.
    assert clean.mean_error_cm < 3.0
    assert crowded.mean_error_cm > 3 * clean.mean_error_cm
    assert adaptive.mean_error_cm < crowded.mean_error_cm / 3
    assert adaptive.mobile_irr_hz > 1.5 * crowded.mobile_irr_hz
