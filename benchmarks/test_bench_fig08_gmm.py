"""Fig 8 benchmark: multi-modal phase of a stationary tag under ambient
motion.

Paper: the phase histogram of a stationary tag in a dynamic environment
forms a *group* of Gaussians (one per multipath superposition), not one.
"""

from conftest import run_once

from repro.experiments import fig08_gmm


def test_fig08_gmm(benchmark):
    result = run_once(benchmark, fig08_gmm.run, duration_s=60.0, seed=5)
    print()
    print(fig08_gmm.format_report(result))

    assert len(result.modes) >= 2  # multi-modal, as Fig 8 shows
    assert result.n_reliable_modes >= 1
    # Each learned mode is far tighter than one Gaussian over everything.
    top = result.modes[0]
    assert top.std_rad < result.single_gaussian_std
