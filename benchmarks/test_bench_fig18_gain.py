"""Fig 18 benchmark: IRR gain vs percentage of mobile tags.

Paper medians: Tagwatch 3.2x at 5%, 1.9x at 10%, ~1.5x mean (approaching
1) at 20%; naive 2.6x / 1.5x / 0.8x — the naive scheme drops below
read-all once Select start-up costs dominate.
"""

from conftest import run_once

from repro.experiments import fig18_gain


def test_fig18_gain(benchmark):
    result = run_once(
        benchmark, fig18_gain.run,
        percents=(5.0, 10.0, 15.0, 20.0),
        populations=(50, 100, 200),
        n_cycles=6,
        warmup_cycles=2,
        phase2_duration_s=1.5,
        seed=29,
    )
    print()
    print(fig18_gain.format_report(result))

    tagwatch_5 = result.median_gain(5.0, "greedy")
    tagwatch_10 = result.median_gain(10.0, "greedy")
    tagwatch_20 = result.median_gain(20.0, "greedy")
    naive_20 = result.median_gain(20.0, "naive")
    assert tagwatch_5 > 2.0  # paper: 3.2x
    assert tagwatch_5 > tagwatch_10 > tagwatch_20  # decreasing in percent
    assert tagwatch_20 < 1.6  # paper: gain ~gone at 20%
    # Paper: naive's median drops to 0.8x at 20% — its gain is fully
    # consumed by per-target Select start-ups.  Our timing profile puts the
    # crossover right at 1.0; the claim "no benefit left" is what matters.
    assert naive_20 <= 1.05
    for percent in result.percents:
        assert (
            result.median_gain(percent, "greedy")
            >= result.median_gain(percent, "naive") - 0.15
        )
