"""Fig 13 benchmark: detection sensitivity vs displacement.

Paper: phase detects ~80%/87%/99% of 1/2/3 cm displacements while RSS
manages 9%/18% at 1-2 cm, reaching ~76% only by 5 cm.
"""

from conftest import run_once

from repro.experiments import fig13_sensitivity


def test_fig13_sensitivity(benchmark):
    result = run_once(
        benchmark, fig13_sensitivity.run,
        displacements_cm=(1.0, 2.0, 3.0, 4.0, 5.0),
        trials=20,
        settle_s=8.0,
        seed=13,
    )
    print()
    print(fig13_sensitivity.format_report(result))

    phase = result.phase_detection_rate
    rss = result.rss_detection_rate
    assert phase[0] >= 0.6  # paper: 80% at 1 cm
    assert phase[2] >= 0.9  # paper: 99% at 3 cm
    assert rss[0] <= 0.3  # paper: 9% at 1 cm
    assert all(p >= r for p, r in zip(phase, rss))
    # Detection improves (weakly) with displacement.
    assert phase[-1] >= phase[0]
