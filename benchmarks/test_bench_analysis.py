"""Model-vs-simulation benchmark: the closed-form gain analysis against the
full Tagwatch simulation (not a paper figure; a consistency check that the
paper's Eqn 5/6 cost model really does explain Fig 18).

The analytic side uses constants *fitted from this simulator* (as the paper
fitted theirs from the R420), so model and simulation share a baseline.
"""

import pytest
from conftest import run_once

from repro.core.analysis import breakeven_percent, predicted_gain
from repro.core.cost import CostModel
from repro.experiments import fig02_irr, fig18_gain
from repro.util.tables import format_table


def run_comparison():
    # Fit (tau0, tau_bar) from the simulated reader, as Section 2.3 does.
    fit = fig02_irr.run(
        tag_counts=(1, 5, 10, 20, 40), initial_qs=(4,), repeats=10, seed=1
    ).fitted
    sim = fig18_gain.run(
        percents=(5.0, 10.0, 20.0),
        populations=(100,),
        methods=("naive",),
        n_cycles=6,
        warmup_cycles=2,
        phase2_duration_s=1.5,
        seed=29,
    )
    rows = []
    for percent in sim.percents:
        rows.append(
            [
                percent,
                predicted_gain(fit, 100, percent, 1.5),
                sim.median_gain(percent, "naive"),
            ]
        )
    return fit, rows


def test_analysis_matches_simulation(benchmark):
    fit, rows = run_once(benchmark, run_comparison)
    print()
    print(
        format_table(
            ["% mobile", "analytic gain", "simulated gain (naive)"],
            rows,
            title=(
                "Cost-model analysis vs simulation (n=100, Phase II 1.5 s); "
                f"fitted tau0={fit.tau0_s * 1e3:.1f} ms, "
                f"tau_bar={fit.tau_bar_s * 1e3:.2f} ms; "
                f"analytic break-even at "
                f"{breakeven_percent(fit, 100, 1.5):.1f}% mobile"
            ),
        )
    )
    for _, analytic, simulated in rows:
        # Closed form vs slot-level simulation: within ~35% once they share
        # fitted constants (residual: Q-adaptive overhead, detection noise).
        assert simulated == pytest.approx(analytic, rel=0.35)
    analytic_col = [r[1] for r in rows]
    simulated_col = [r[2] for r in rows]
    assert analytic_col == sorted(analytic_col, reverse=True)
    assert simulated_col == sorted(simulated_col, reverse=True)
