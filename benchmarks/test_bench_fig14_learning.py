"""Fig 14 benchmark: the immobility-model learning curve.

Paper: ~70% detection accuracy after ~1.49 s of trace (~67 readings) and
~90% after ~2.9 s (~130 readings) — one 5 s cycle stabilises a new mode.
"""

from conftest import run_once

from repro.experiments import fig14_learning


def test_fig14_learning(benchmark):
    result = run_once(benchmark, fig14_learning.run, duration_s=60.0, seed=17)
    print()
    print(fig14_learning.format_report(result))

    assert result.reads_needed(0.7) <= 90  # paper: ~67 readings
    assert result.reads_needed(0.9) <= 150  # paper: ~130 readings
    assert result.accuracy[0] < 0.5  # cold start really is cold
    assert max(result.accuracy) >= 0.9
