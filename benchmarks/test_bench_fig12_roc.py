"""Fig 12 benchmark: ROC of the four motion detectors.

Paper: Phase-MoG reaches >=0.95 TPR at <=0.1 FPR; both phase detectors
beat both RSS detectors; MoG controls false positives better than naive
differencing.
"""

from conftest import run_once

from repro.experiments import fig12_roc


def test_fig12_roc(benchmark):
    result = run_once(
        benchmark, fig12_roc.run,
        n_stationary=30,
        n_people=3,
        monitor_duration_s=120.0,
        mobile_duration_s=40.0,
        seed=11,
    )
    print()
    print(fig12_roc.format_report(result))

    curves = result.curves
    assert curves["Phase-MoG"].tpr_at_fpr(0.1) >= 0.95  # paper headline
    assert curves["Phase-MoG"].auc > curves["Rss-MoG"].auc
    assert curves["Phase-differencing"].auc > curves["Rss-differencing"].auc
    assert (
        curves["Phase-MoG"].tpr_at_fpr(0.1)
        >= curves["Phase-differencing"].tpr_at_fpr(0.1)
    )
