"""Benchmark harness configuration.

Each benchmark runs one figure's experiment driver at (scaled) paper scale,
prints the same rows/series the paper reports, and asserts the headline
shape so a regression in any layer fails loudly.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
