"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Anti-collision strategy: Q-adaptive (COTS) vs genie DFSA vs fixed-Q —
   the paper's Section 2.3 observation that Q-adaptive already sits close
   to the optimum, leaving little room in the link layer.
2. Set-cover selection vs naive vs pure-cover as EPC structure varies:
   random EPCs (the paper's deployment) leave little to group; structured
   (sequential) EPCs let the greedy collapse many targets into one mask.
3. Start-up-cost sensitivity: the >20% crossover where adaptive reading
   stops paying is driven by tau_0.
4. GMM hyper-parameters: K=1 (single Gaussian) loses multipath robustness
   that K=8 retains.
"""

import numpy as np
from conftest import run_once

from repro.core.bitmask import IndexedBitmaskTable
from repro.core.cost import CostModel, PAPER_R420
from repro.core.gmm import GaussianMixtureStack, GmmParams
from repro.core.setcover import greedy_cover, naive_selection
from repro.experiments.harness import build_lab
from repro.gen2.aloha import FixedQ, IdealDFSA, QAdaptive
from repro.gen2.epc import random_epc_population, sequential_epc_population
from repro.util.circular import TWO_PI
from repro.util.tables import format_table


def _anticollision_rows():
    rows = []
    strategies = {
        "q-adaptive": lambda: QAdaptive(initial_q=4),
        "ideal-dfsa": IdealDFSA,
        "fixed-q6": lambda: FixedQ(6),
    }
    for name, factory in strategies.items():
        setup = build_lab(n_tags=30, n_mobile=0, seed=7, n_antennas=1)
        setup.reader.engine.strategy_factory = factory
        durations = [
            setup.reader.inventory_round(0).log.duration_s for _ in range(15)
        ]
        rows.append([name, float(np.mean(durations)) * 1e3])
    return rows


def test_ablation_anticollision(benchmark):
    rows = run_once(benchmark, _anticollision_rows)
    print()
    print(
        format_table(
            ["strategy", "round (ms), n=30"],
            rows,
            title="Ablation — anti-collision strategy",
        )
    )
    by_name = {name: duration for name, duration in rows}
    # Q-adaptive approaches the genie optimum (paper: "already a good
    # algorithm approaching the optimal solution").
    assert by_name["q-adaptive"] < 1.6 * by_name["ideal-dfsa"]


def _setcover_rows():
    rows = []
    for label, epcs in (
        ("random EPCs", random_epc_population(100, rng=3)),
        ("sequential EPCs", sequential_epc_population(100)),
    ):
        targets = list(range(8))
        table = IndexedBitmaskTable(epcs)
        candidates = table.candidate_rows(targets)
        greedy = greedy_cover(candidates, targets, len(epcs), PAPER_R420, rng=1)
        naive = naive_selection([epcs[i] for i in targets], PAPER_R420)
        rows.append(
            [
                label,
                greedy.total_cost_s * 1e3,
                naive.total_cost_s * 1e3,
                naive.total_cost_s / greedy.total_cost_s,
                greedy.n_rounds,
                greedy.n_collateral,
            ]
        )
    return rows


def test_ablation_setcover_structure(benchmark):
    rows = run_once(benchmark, _setcover_rows)
    print()
    print(
        format_table(
            [
                "population",
                "greedy (ms)",
                "naive (ms)",
                "naive/greedy",
                "masks",
                "collateral",
            ],
            rows,
            title="Ablation — set cover vs EPC structure (8 of 100 targets)",
        )
    )
    random_row, sequential_row = rows
    # Greedy never loses to naive, and structured EPCs amplify its win.
    assert random_row[3] >= 1.0
    assert sequential_row[3] > random_row[3]
    assert sequential_row[4] < 8  # grouped masks


def _tau0_rows():
    """Analytic crossover: per-sweep cost of scheduling n' targets vs
    reading all n once, as tau_0 varies."""
    rows = []
    n = 100
    for tau0_ms in (5.0, 19.0, 40.0):
        model = CostModel(tau0_s=tau0_ms / 1e3, tau_bar_s=0.18e-3)
        read_all = model.inventory_cost(n)
        crossover = None
        for n_targets in range(1, n + 1):
            naive_sweep = n_targets * model.inventory_cost(1)
            if naive_sweep > read_all:
                crossover = n_targets
                break
        rows.append([tau0_ms, 100.0 * crossover / n])
    return rows


def test_ablation_tau0_crossover(benchmark):
    rows = run_once(benchmark, _tau0_rows)
    print()
    print(
        format_table(
            ["tau0 (ms)", "naive crossover (% mobile)"],
            rows,
            title="Ablation — start-up cost drives the adaptivity crossover",
        )
    )
    crossovers = [row[1] for row in rows]
    # Larger tau_0 makes per-target rounds costlier: crossover comes earlier.
    assert crossovers[0] > crossovers[1] > crossovers[2]


def _gmm_rows():
    """False positives of K=1 vs K=8 on a two-state multipath phase."""
    rng = np.random.default_rng(5)
    stream = []
    for block in range(120):
        center = 1.0 if block % 2 == 0 else 2.4
        stream += [
            float(np.mod(center + rng.normal(0, 0.08), TWO_PI))
            for _ in range(10)
        ]
    rows = []
    for k in (1, 2, 8):
        stack = GaussianMixtureStack(GmmParams(max_modes=k))
        flags = [not stack.update(v).stationary for v in stream]
        tail = flags[len(flags) // 2 :]
        rows.append([k, float(np.mean(tail))])
    return rows


def test_ablation_gmm_modes(benchmark):
    rows = run_once(benchmark, _gmm_rows)
    print()
    print(
        format_table(
            ["K (modes)", "false-positive rate"],
            rows,
            title="Ablation — mixture size under two-state multipath",
        )
    )
    by_k = {k: fpr for k, fpr in rows}
    # A single Gaussian cannot express two multipath states (Fig 7/8's
    # argument for the mixture).
    assert by_k[8] < 0.2
    assert by_k[1] > by_k[8] + 0.2
